//! Shared run helpers: scaled configurations, image caching, and
//! baseline caching, so regenerating all experiments stays fast.

use dcfb_sim::{SimConfig, SimReport, Simulator};
use dcfb_trace::IsaMode;
use dcfb_workloads::{all_workloads, ProgramImage, Walker, Workload};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The trace seed used by every experiment (determinism).
pub const TRACE_SEED: u64 = 0xD0_5EED;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Warmup instructions per run (`DCFB_WARMUP`, default 1 M).
pub fn warmup_instrs() -> u64 {
    env_u64("DCFB_WARMUP", 1_000_000)
}

/// Measured instructions per run (`DCFB_MEASURE`, default 2 M).
pub fn measure_instrs() -> u64 {
    env_u64("DCFB_MEASURE", 2_000_000)
}

/// The workload list, optionally truncated by `DCFB_WORKLOADS`.
pub fn workloads() -> Vec<Workload> {
    let all = all_workloads();
    let n = env_u64("DCFB_WORKLOADS", all.len() as u64) as usize;
    all.into_iter().take(n.max(1)).collect()
}

/// Applies the experiment scale to a configuration.
pub fn scaled(mut cfg: SimConfig) -> SimConfig {
    cfg.warmup_instrs = warmup_instrs();
    cfg.measure_instrs = measure_instrs();
    cfg
}

/// A scaled configuration for a named method.
///
/// # Panics
///
/// Panics on an unknown method name.
pub fn method_config(name: &str) -> SimConfig {
    scaled(SimConfig::for_method(name).unwrap_or_else(|| panic!("unknown method {name}")))
}

type ImageKey = (String, IsaMode);

fn image_cache() -> &'static Mutex<HashMap<ImageKey, Arc<ProgramImage>>> {
    static CACHE: OnceLock<Mutex<HashMap<ImageKey, Arc<ProgramImage>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Builds (or fetches a cached) program image for `workload`.
pub fn image_for(workload: &Workload, isa: IsaMode) -> Arc<ProgramImage> {
    let key = (workload.name.to_owned(), isa);
    if let Some(img) = image_cache().lock().unwrap().get(&key) {
        return Arc::clone(img);
    }
    let img = workload.image(isa);
    image_cache()
        .lock()
        .unwrap()
        .insert(key, Arc::clone(&img));
    img
}

/// Runs `cfg` on `workload` (cached image, fixed trace seed).
pub fn run(workload: &Workload, cfg: SimConfig) -> SimReport {
    let image = image_for(workload, cfg.isa);
    let mut sim = Simulator::new(cfg, Arc::clone(&image));
    let mut walker = Walker::new(image, TRACE_SEED);
    sim.run(&mut walker)
}

fn baseline_cache() -> &'static Mutex<HashMap<String, SimReport>> {
    static CACHE: OnceLock<Mutex<HashMap<String, SimReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The no-prefetcher baseline for `workload` at the current scale
/// (cached per process).
pub fn baseline(workload: &Workload) -> SimReport {
    let key = format!(
        "{}:{}:{}",
        workload.name,
        warmup_instrs(),
        measure_instrs()
    );
    if let Some(r) = baseline_cache().lock().unwrap().get(&key) {
        return r.clone();
    }
    let r = run(workload, method_config("Baseline"));
    baseline_cache().lock().unwrap().insert(key, r.clone());
    r
}

/// Runs a named method on every workload, yielding
/// `(workload, report, baseline)` triples.
pub fn run_method_all(method: &str) -> Vec<(Workload, SimReport, SimReport)> {
    workloads()
        .into_iter()
        .map(|w| {
            let base = baseline(&w);
            let rep = run(&w, method_config(method));
            (w, rep, base)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults() {
        assert!(warmup_instrs() >= 1);
        assert!(measure_instrs() >= 1);
        assert!(!workloads().is_empty());
    }

    #[test]
    fn image_cache_returns_same_arc() {
        let w = &workloads()[0];
        let a = image_for(w, IsaMode::Fixed4);
        let b = image_for(w, IsaMode::Fixed4);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
