//! The pooled fuzz-campaign driver behind `dcfb fuzz`.
//!
//! `dcfb-conformance::campaign` owns the deterministic core (plan →
//! evaluate → absorb); this module supplies what the core deliberately
//! does not depend on: the PR-2 [`parallel_map_jobs`] worker pool for
//! fanning candidate evaluation out across threads, the PR-1
//! [`Checkpoint`] machinery for persisting and resuming campaign state,
//! and wall-clock accounting. Because candidate planning is a pure
//! function of `(seed, round, index)` and absorption happens in
//! candidate order, `--jobs J` changes only wall-clock: the final
//! corpus digest and coverage map are bit-identical at any `J`.

use crate::checkpoint::Checkpoint;
use crate::sweep::parallel_map_jobs;
use dcfb_conformance::campaign::{evaluate, run_sequential, Campaign, CampaignConfig};
use dcfb_conformance::corpus::{parse_ops, CORPUS_SCHEMA};
use dcfb_conformance::coverage::{baseline_coverage, CoverageMap, COVERAGE_BITS};
use dcfb_conformance::ops::EngineOp;
use dcfb_errors::DcfbError;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema tag of the fuzz-campaign checkpoint state.
pub const FUZZ_STATE_SCHEMA: &str = "dcfb-fuzz-state-v1";

/// Shape of one `dcfb fuzz` invocation.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master campaign seed.
    pub seed: u64,
    /// Total op budget (`--ops`); ignored when `quick` is set.
    pub total_ops: u64,
    /// Worker threads for candidate evaluation (`--jobs`).
    pub jobs: usize,
    /// Use the bounded `--quick` smoke shape instead of `total_ops`.
    pub quick: bool,
    /// Checkpoint file to resume from and save to (`--state`).
    pub state: Option<PathBuf>,
    /// Where to write the minimized corpus text (`--corpus-out`).
    pub corpus_out: Option<PathBuf>,
}

impl FuzzOptions {
    /// The campaign config these options select.
    pub fn config(&self) -> CampaignConfig {
        if self.quick {
            CampaignConfig::quick(self.seed)
        } else {
            CampaignConfig::standard(self.seed, self.total_ops)
        }
    }
}

/// Everything one campaign run produced, for the CLI and for the
/// bench-sweep v6 fuzz metrics.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// The campaign seed.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Rounds planned.
    pub rounds: u64,
    /// Candidates evaluated.
    pub candidates: u64,
    /// Ops executed across all candidates.
    pub ops_executed: u64,
    /// Corpus entries (coverage-increasing, minimized).
    pub corpus_len: usize,
    /// Corpus digest (`fnv:…`; identical at any job count).
    pub corpus_digest: String,
    /// Final coverage map, hex form.
    pub coverage_hex: String,
    /// Coverage bits lit.
    pub coverage_bits: u32,
    /// `coverage_bits / COVERAGE_BITS`.
    pub coverage_frac: f64,
    /// Behavior slots hit (of the 42).
    pub coverage_slots: u32,
    /// Bits the PR-4 fixed-seed generator lights at the same budget.
    pub baseline_bits: u32,
    /// Wall-clock seconds for the campaign loop.
    pub seconds: f64,
    /// Ops evaluated per wall-clock second.
    pub ops_per_sec: f64,
    /// The shrunk counterexample, rendered, if any harness diverged.
    pub counterexample: Option<String>,
    /// Length of the shrunk counterexample, if any.
    pub counterexample_len: Option<usize>,
}

impl FuzzReport {
    /// The deterministic summary `dcfb fuzz` prints to stdout —
    /// everything here is bit-identical at any `--jobs`, so the text
    /// is too (timing goes to stderr).
    pub fn render(&self) -> String {
        let mut out = format!(
            "fuzz: seed={} ops={} candidates={} rounds={}\n",
            self.seed, self.ops_executed, self.candidates, self.rounds
        );
        out.push_str(&format!(
            "coverage: {}/{} bits ({} of 42 slots), baseline {} bits\n",
            self.coverage_bits, COVERAGE_BITS, self.coverage_slots, self.baseline_bits
        ));
        out.push_str(&format!(
            "corpus: {} entries, digest {}\n",
            self.corpus_len, self.corpus_digest
        ));
        match &self.counterexample {
            Some(ce) => {
                out.push_str("DIVERGENCE (shrunk):\n");
                out.push_str(ce);
                if !out.ends_with('\n') {
                    out.push('\n');
                }
            }
            None => out.push_str("no divergence\n"),
        }
        out
    }
}

fn config_err(message: String) -> DcfbError {
    DcfbError::Config(message)
}

fn state_field(cp: &Checkpoint, key: &str) -> Result<String, DcfbError> {
    cp.get(key)
        .map(str::to_owned)
        .ok_or_else(|| config_err(format!("fuzz state: missing field {key:?}")))
}

fn state_u64(cp: &Checkpoint, key: &str) -> Result<u64, DcfbError> {
    let raw = state_field(cp, key)?;
    raw.parse::<u64>()
        .map_err(|e| config_err(format!("fuzz state: bad {key} {raw:?}: {e}")))
}

/// Serializes a campaign into checkpoint entries (schema, seed, budget
/// position, coverage hex, one line per corpus entry).
fn save_state(campaign: &Campaign, path: &Path) -> Result<(), DcfbError> {
    let mut cp = Checkpoint::new();
    cp.put("schema", FUZZ_STATE_SCHEMA);
    cp.put("corpus-schema", CORPUS_SCHEMA);
    cp.put("seed", &campaign.config().seed.to_string());
    cp.put("round", &campaign.rounds().to_string());
    cp.put("ops-done", &campaign.ops_executed().to_string());
    cp.put("candidates", &campaign.candidates().to_string());
    cp.put("coverage", &campaign.coverage().to_hex());
    let lines = campaign.corpus().lines();
    cp.put("entries", &lines.len().to_string());
    for (i, line) in lines.iter().enumerate() {
        cp.put(&format!("entry-{i}"), line);
    }
    cp.save(path)
}

/// Restores a campaign from a checkpoint file written by
/// [`save_state`]. A missing file yields a fresh campaign; a state
/// saved under a different seed (or a damaged one) is a typed config
/// error rather than a silently different campaign.
fn load_state(cfg: CampaignConfig, path: &Path) -> Result<Campaign, DcfbError> {
    let cp = Checkpoint::load(path)?;
    if cp.entries().next().is_none() {
        return Campaign::new(cfg).map_err(config_err);
    }
    let schema = state_field(&cp, "schema")?;
    if schema != FUZZ_STATE_SCHEMA {
        return Err(config_err(format!(
            "fuzz state {}: schema {schema:?} != {FUZZ_STATE_SCHEMA:?}",
            path.display()
        )));
    }
    let saved_seed = state_u64(&cp, "seed")?;
    if saved_seed != cfg.seed {
        return Err(config_err(format!(
            "fuzz state {}: saved seed {saved_seed} != requested seed {} \
             (pass --seed {saved_seed} to resume it, or a fresh --state path)",
            path.display(),
            cfg.seed
        )));
    }
    let coverage = CoverageMap::from_hex(&state_field(&cp, "coverage")?)
        .map_err(|e| config_err(format!("fuzz state: bad coverage map: {e}")))?;
    let n = state_u64(&cp, "entries")? as usize;
    let mut entries: Vec<Vec<EngineOp>> = Vec::with_capacity(n);
    for i in 0..n {
        let line = state_field(&cp, &format!("entry-{i}"))?;
        entries
            .push(parse_ops(&line).map_err(|e| config_err(format!("fuzz state: entry {i}: {e}")))?);
    }
    Campaign::restore(
        cfg,
        entries,
        coverage,
        state_u64(&cp, "round")?,
        state_u64(&cp, "ops-done")?,
        state_u64(&cp, "candidates")?,
    )
    .map_err(config_err)
}

fn report_of(campaign: &Campaign, jobs: usize, seconds: f64) -> FuzzReport {
    let coverage = campaign.coverage();
    let baseline = baseline_coverage(campaign.config().seed, campaign.ops_executed());
    FuzzReport {
        seed: campaign.config().seed,
        jobs,
        rounds: campaign.rounds(),
        candidates: campaign.candidates(),
        ops_executed: campaign.ops_executed(),
        corpus_len: campaign.corpus().len(),
        corpus_digest: campaign.corpus().digest(),
        coverage_hex: coverage.to_hex(),
        coverage_bits: coverage.bit_count(),
        coverage_frac: f64::from(coverage.bit_count()) / COVERAGE_BITS as f64,
        coverage_slots: coverage.slot_count(),
        baseline_bits: baseline.bit_count(),
        seconds,
        ops_per_sec: campaign.ops_executed() as f64 / seconds.max(1e-9),
        counterexample: campaign.counterexample().map(|ce| ce.to_string()),
        counterexample_len: campaign.counterexample().map(|ce| ce.ops.len()),
    }
}

/// Runs a whole campaign on the worker pool: plan a round, evaluate
/// its candidates through [`parallel_map_jobs`], absorb in candidate
/// order, checkpoint, repeat until the budget is spent or a divergence
/// ends the hunt. The returned report (and any `--corpus-out` file) is
/// bit-identical at any `jobs` value.
///
/// # Errors
///
/// [`DcfbError::Config`] for an invalid shape or an incompatible
/// `--state` file, [`DcfbError::Io`] when persisting fails.
pub fn run_fuzz_campaign(opts: &FuzzOptions) -> Result<FuzzReport, DcfbError> {
    let cfg = opts.config();
    let jobs = opts.jobs.max(1);
    let mut campaign = match &opts.state {
        Some(path) => load_state(cfg, path)?,
        None => Campaign::new(cfg).map_err(config_err)?,
    };
    let t0 = Instant::now();
    while !campaign.done() {
        let batch = campaign.next_batch();
        let layout = campaign.layout().clone();
        let outcomes = parallel_map_jobs(batch, jobs, |ops| evaluate(&layout, ops.clone()));
        campaign.absorb(outcomes);
        if let Some(path) = &opts.state {
            save_state(&campaign, path)?;
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    if let Some(path) = &opts.corpus_out {
        let text = campaign.corpus().render(cfg.seed);
        std::fs::write(path, text).map_err(|e| DcfbError::io(path.display().to_string(), &e))?;
    }
    Ok(report_of(&campaign, jobs, seconds))
}

/// The fixed-shape quick campaign the bench-sweep fuzz metrics time
/// (sequential, no persistence — the sweep wants engine throughput,
/// not pool scheduling).
///
/// # Errors
///
/// [`DcfbError::Config`] if the built-in quick shape fails validation
/// (it cannot, short of a code bug).
pub fn quick_campaign_metrics(seed: u64) -> Result<(f64, f64), DcfbError> {
    let t0 = Instant::now();
    let campaign = run_sequential(CampaignConfig::quick(seed)).map_err(config_err)?;
    let seconds = t0.elapsed().as_secs_f64().max(1e-9);
    let ops_per_sec = campaign.ops_executed() as f64 / seconds;
    let frac = f64::from(campaign.coverage().bit_count()) / COVERAGE_BITS as f64;
    Ok((ops_per_sec, frac))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dcfb-fuzz-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn pooled_campaign_is_bit_identical_across_job_counts() {
        let base = FuzzOptions {
            seed: 42,
            total_ops: 0,
            jobs: 1,
            quick: true,
            state: None,
            corpus_out: None,
        };
        let one = run_fuzz_campaign(&base).unwrap();
        let four = run_fuzz_campaign(&FuzzOptions { jobs: 4, ..base }).unwrap();
        assert_eq!(one.corpus_digest, four.corpus_digest);
        assert_eq!(one.coverage_hex, four.coverage_hex);
        assert_eq!(one.candidates, four.candidates);
        assert_eq!(one.rounds, four.rounds);
        assert_eq!(one.render(), four.render());
        assert!(one.counterexample.is_none());
        assert!(one.coverage_bits > one.baseline_bits);
    }

    #[test]
    fn state_file_round_trips_and_guards_the_seed() {
        let path = tmp("state");
        let _ = std::fs::remove_file(&path);
        let opts = FuzzOptions {
            seed: 7,
            total_ops: 0,
            jobs: 2,
            quick: true,
            state: Some(path.clone()),
            corpus_out: None,
        };
        let first = run_fuzz_campaign(&opts).unwrap();
        // Resuming a finished campaign does no further work and lands
        // on the identical state.
        let resumed = run_fuzz_campaign(&opts).unwrap();
        assert_eq!(resumed.corpus_digest, first.corpus_digest);
        assert_eq!(resumed.coverage_hex, first.coverage_hex);
        assert_eq!(resumed.candidates, first.candidates);

        // A different seed against the same state file must be a typed
        // config error, not a quietly mixed campaign.
        let clash = run_fuzz_campaign(&FuzzOptions {
            seed: 8,
            ..opts.clone()
        });
        match clash {
            Err(DcfbError::Config(m)) => assert!(m.contains("saved seed 7"), "{m}"),
            other => panic!("expected Config error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corpus_out_writes_the_replayable_text_form() {
        // The written file must parse back into the same corpus.
        let path = tmp("corpus");
        let _ = std::fs::remove_file(&path);
        let report = run_fuzz_campaign(&FuzzOptions {
            seed: 42,
            total_ops: 0,
            jobs: 2,
            quick: true,
            state: None,
            corpus_out: Some(path.clone()),
        })
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let (seed, entries) = dcfb_conformance::corpus::parse_corpus_text(&text).unwrap();
        assert_eq!(seed, 42);
        assert_eq!(entries.len(), report.corpus_len);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn damaged_state_is_a_config_error() {
        let path = tmp("damaged");
        std::fs::write(&path, "{\n  \"schema\": \"something-else\"\n}\n").unwrap();
        let err = run_fuzz_campaign(&FuzzOptions {
            seed: 1,
            total_ops: 0,
            jobs: 1,
            quick: true,
            state: Some(path.clone()),
            corpus_out: None,
        })
        .unwrap_err();
        assert!(matches!(err, DcfbError::Config(_)), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_budget_is_a_config_error() {
        let err = run_fuzz_campaign(&FuzzOptions {
            seed: 1,
            total_ops: 0,
            jobs: 1,
            quick: false,
            state: None,
            corpus_out: None,
        })
        .unwrap_err();
        assert!(matches!(err, DcfbError::Config(_)), "{err:?}");
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn quick_metrics_are_positive_fractions() {
        let (ops_per_sec, frac) = quick_campaign_metrics(42).unwrap();
        assert!(ops_per_sec > 0.0);
        assert!(frac > 0.0 && frac <= 1.0, "{frac}");
    }
}
