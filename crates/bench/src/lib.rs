//! # dcfb-bench
//!
//! The experiment harness: one generator per table and figure of the
//! paper, shared by the `fig*`/`tab*` binaries and by
//! `all_experiments`, which regenerates everything and emits
//! `EXPERIMENTS.md`-ready markdown.
//!
//! Run scale is controlled by environment variables so CI can be quick
//! and a full reproduction can be thorough:
//!
//! * `DCFB_WARMUP` — warmup instructions per run (default 1,000,000),
//! * `DCFB_MEASURE` — measured instructions per run (default 2,000,000),
//! * `DCFB_WORKLOADS` — restrict to the first N workloads (default all 7),
//! * `DCFB_JOBS` — worker threads for the parallel sweep (default =
//!   available parallelism; 1 forces the sequential path). Results are
//!   merged in item order, so the output is byte-identical for every
//!   job count.

pub mod chaos;
pub mod checkpoint;
pub mod figures;
pub mod fuzz;
pub mod runs;
pub mod supervisor;
pub mod sweep;
pub mod table;

pub use fuzz::{run_fuzz_campaign, FuzzOptions, FuzzReport};
pub use runs::{measure_instrs, warmup_instrs, workloads};
pub use supervisor::{
    BackoffPolicy, Deadline, JobEnvelope, JobOutcome, JobRecord, JobStatus, SupervisionReport,
    Supervisor, SupervisorOptions,
};
pub use sweep::{run_bench_sweep, BenchSweepReport, ServeMixMeasurement, SweepOptions};
pub use table::Table;
