//! The parallel sweep executor and the `bench-sweep` perf harness.
//!
//! Every `(workload, method)` simulation in this reproduction is an
//! independent deterministic computation (fixed [`crate::runs::TRACE_SEED`],
//! own `Simulator`, shared read-only `ProgramImage`), so the sweep is
//! embarrassingly parallel. [`parallel_map`] runs a fixed item list on a
//! small worker pool (`DCFB_JOBS`, default = available parallelism) and
//! returns results **in item order**: workers pull the next index from an
//! atomic counter and write into that index's slot, so the merged output
//! is byte-identical to a sequential run regardless of completion order.
//!
//! The second half of this module is the perf-trajectory harness behind
//! `dcfb bench-sweep`: it times the sweep sequentially and in parallel,
//! times single-run engine throughput (simulated instructions per
//! second), and writes the results as `BENCH_sweep.json` so later PRs
//! can compare against the recorded trajectory.

use crate::runs::{self, measure_instrs, warmup_instrs, workloads};
use dcfb_errors::DcfbError;
use dcfb_sim::{
    run_resolved, run_sharded, run_sharded_resolved, ShardOptions, SimConfig, SimReport,
};
use dcfb_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable selecting the worker-pool size.
pub const JOBS_ENV: &str = "DCFB_JOBS";

/// The worker-pool size: `DCFB_JOBS` when set (0 is treated as 1),
/// otherwise the host's available parallelism.
pub fn jobs() -> usize {
    let default = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    (runs::env_u64(JOBS_ENV, default as u64) as usize).max(1)
}

fn lock_slot<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Maps `f` over `items` on a pool of [`jobs`] worker threads,
/// returning results in item order (deterministic merge).
///
/// A panic inside `f` propagates to the caller once the pool joins —
/// the same observable behavior as a panic in a sequential loop, which
/// keeps the figure-level `catch_unwind` in `all_experiments` working
/// unchanged under parallel execution.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_jobs(items, jobs(), f)
}

/// [`parallel_map`] with an explicit worker count (used by the timing
/// harness to compare `jobs = 1` against `jobs = N` directly).
pub fn parallel_map_jobs<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        // Plain in-thread loop: no pool, no synchronization.
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *lock_slot(&slots[i]) = Some(r);
            });
        }
    });
    // A worker panic re-raises at scope exit, so reaching this point
    // means every slot was filled exactly once.
    let out: Vec<R> = slots
        .into_iter()
        .filter_map(|slot| match slot.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        })
        .collect();
    assert_eq!(out.len(), n, "worker pool lost results");
    out
}

/// Scale and shape of one `bench-sweep` measurement.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Warmup instructions per run.
    pub warmup: u64,
    /// Measured instructions per run.
    pub measure: u64,
    /// Worker count for the parallel pass.
    pub jobs: usize,
    /// Methods crossed with every workload.
    pub methods: Vec<String>,
}

impl Default for SweepOptions {
    /// Scale from the `DCFB_WARMUP`/`DCFB_MEASURE` environment, jobs
    /// from `DCFB_JOBS`, and a four-method cross-section of the paper's
    /// sweep (baseline, sequential, the proposed method, BTB-directed).
    fn default() -> Self {
        SweepOptions {
            warmup: warmup_instrs(),
            measure: measure_instrs(),
            jobs: jobs(),
            methods: ["Baseline", "N4L", "SN4L+Dis+BTB", "Shotgun"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        }
    }
}

/// The measurements `bench-sweep` records (serialized as
/// `BENCH_sweep.json`).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSweepReport {
    /// Schema tag ([`BENCH_SWEEP_SCHEMA`]).
    pub schema: String,
    /// Cores the host reports.
    pub host_cores: u64,
    /// Worker count used for the parallel pass.
    pub jobs: u64,
    /// Workloads in the sweep.
    pub workloads: u64,
    /// Methods in the sweep.
    pub methods: u64,
    /// Total `(workload, method)` runs per pass.
    pub runs: u64,
    /// Warmup instructions per run.
    pub warmup_instrs: u64,
    /// Measured instructions per run.
    pub measure_instrs: u64,
    /// Wall-clock seconds for the sequential pass.
    pub seq_seconds: f64,
    /// Wall-clock seconds for the parallel pass.
    pub par_seconds: f64,
    /// `seq_seconds / par_seconds`.
    pub sweep_speedup: f64,
    /// Whether the parallel pass reproduced the sequential reports
    /// bit-for-bit.
    pub deterministic: bool,
    /// Instructions simulated by each single-run timing (warmup +
    /// measure).
    pub single_run_instrs: u64,
    /// Single-run throughput, baseline config (simulated instrs/sec).
    pub single_run_baseline_ips: f64,
    /// Single-run throughput, SN4L+Dis+BTB config (simulated
    /// instrs/sec). Telemetry is off, as in every other pass — this is
    /// the number the < 2 % telemetry-off regression budget guards.
    pub single_run_dcfb_ips: f64,
    /// Single-run throughput, SN4L+Dis+BTB with telemetry enabled
    /// (simulated instrs/sec).
    pub single_run_dcfb_telemetry_ips: f64,
    /// Throughput cost of enabling telemetry:
    /// `1 - telemetry_ips / dcfb_ips`. Small negative values are timer
    /// noise; anything below −5 % fails validation (the interleaved
    /// measurement cannot legitimately produce it).
    pub telemetry_overhead_frac: f64,
    /// Provenance of `telemetry_overhead_frac`: `"interleaved-ab"`
    /// means the off/on timings alternated round-robin and each arm
    /// took its best round, so slow host-frequency drift cancels out;
    /// `"on-path"` was the v6 one-shot pair (recording inside the timed
    /// simulation loop); `"off-path"` would mean recording happened
    /// outside the timed region.
    pub telemetry_overhead_measurement: String,
    /// Prefetches issued during the telemetry-enabled run, summed over
    /// every prefetcher source.
    pub telemetry_issued_prefetches: u64,
    /// Accurately-timed prefetches during the telemetry-enabled run.
    pub telemetry_accurate_prefetches: u64,
    /// Shard count used for the sharded single-run timing.
    pub shards: u64,
    /// Warm-only instruction prefix replayed before each shard after
    /// the first during the sharded timing.
    pub shard_warmup_overlap: u64,
    /// Single-run throughput of the sharded executor at [`shards`]
    /// shards, counting only the useful (warmup + measure) work — so it
    /// is directly comparable to `single_run_dcfb_ips`. Trace
    /// recording and the per-shard overlap replays are included in the
    /// timed region; they are the price of sharding.
    ///
    /// [`shards`]: BenchSweepReport::shards
    pub single_run_sharded_ips: f64,
    /// `single_run_sharded_ips / single_run_dcfb_ips`: the end-to-end
    /// speedup of sharding one run. Below 1.0 on a single-core host
    /// (the shards serialize but the overlap work remains).
    pub sharded_speedup: f64,
    /// Whether a one-shard plan reproduced the sequential report
    /// digest bit-for-bit on this host (must be true).
    pub shard_digest_identity: bool,
    /// Non-empty exactly when the parallel and sharded passes ran with
    /// one worker: speedups in this report then understate what a
    /// multi-core host would measure.
    pub jobs_warning: String,
    /// Jobs submitted to the in-process `dcfb serve` instance during
    /// the served-mix pass (repeat submissions included).
    pub serve_submit_jobs: u64,
    /// Fraction of those submissions answered from the memoized result
    /// cache (the mix replays every unique job once, so this is ~0.5
    /// by construction).
    pub serve_cache_hit_frac: f64,
    /// Served throughput of the mix: submissions resolved per second,
    /// end to end through the HTTP protocol, queue, and worker pool.
    pub serve_jobs_per_sec: f64,
    /// Throughput of the quick conformance-fuzz campaign: candidate
    /// ops evaluated (coverage probe + three lockstep harnesses) per
    /// wall-clock second.
    pub fuzz_ops_per_sec: f64,
    /// Fraction of the behavioral coverage map the quick campaign lit
    /// (bits hit / total bits); in `(0, 1]` by construction.
    pub fuzz_coverage_frac: f64,
    /// Workload-source registry kinds this sweep exercised,
    /// comma-separated (`"synthetic,mix"`: the cross-product rows are
    /// synthetic, the tenant-mix row below comes from the `mix:`
    /// source).
    pub workload_source_kinds: String,
    /// Canonical spec of the tenant-mix throughput row (e.g.
    /// `mix:OLTP (DB A)+Web (Apache)`).
    pub mix_workload: String,
    /// Single-run SN4L+Dis+BTB throughput on the tenant mix (simulated
    /// instrs/sec) — the multi-tenant counterpart of
    /// `single_run_dcfb_ips`.
    pub mix_single_run_ips: f64,
    /// Whether the mix run's K=1 sharded digest reproduced the
    /// sequential resolved run bit-for-bit (must be true — the
    /// determinism contract of the interleaver).
    pub mix_digest_identity: bool,
}

/// The served-job-mix measurement recorded in schema v5. Produced by
/// `dcfb-serve::measure_serve_mix` (the bench crate defines only the
/// shape, to keep the dependency arrow pointing serve → bench).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeMixMeasurement {
    /// Jobs submitted (repeat submissions included).
    pub submit_jobs: u64,
    /// Fraction of submissions answered from the result cache.
    pub cache_hit_frac: f64,
    /// Submissions resolved per wall-clock second.
    pub jobs_per_sec: f64,
}

/// Schema tag for `BENCH_sweep.json`.
///
/// v2 added the telemetry on/off throughput delta
/// (`single_run_dcfb_telemetry_ips`, `telemetry_overhead_frac`) and the
/// timeliness digest of the telemetry-enabled run. v3 records the
/// provenance of the overhead measurement
/// (`telemetry_overhead_measurement`: on-path vs off-path). v4 adds the
/// sharded-executor timing (`shards`, `shard_warmup_overlap`,
/// `single_run_sharded_ips`, `sharded_speedup`, `shard_digest_identity`)
/// and the single-worker `jobs_warning`. v5 adds the served-job-mix
/// measurement through `dcfb serve` (`serve_submit_jobs`,
/// `serve_cache_hit_frac`, `serve_jobs_per_sec`). v6 adds the
/// conformance-fuzz campaign measurement (`fuzz_ops_per_sec`,
/// `fuzz_coverage_frac`). v7 interleaves the telemetry off/on timings
/// as A/B rounds (`telemetry_overhead_measurement: "interleaved-ab"`,
/// fraction floor −5 %) and adds the workload-source axis
/// (`workload_source_kinds`) with a tenant-mix throughput row
/// (`mix_workload`, `mix_single_run_ips`, `mix_digest_identity`).
pub const BENCH_SWEEP_SCHEMA: &str = "dcfb-bench-sweep-v7";

/// `telemetry_overhead_measurement` value for the v6 one-shot pair:
/// the telemetry-enabled run timed once with per-cycle recording on
/// the simulation path (export excluded).
pub const TELEMETRY_OVERHEAD_ON_PATH: &str = "on-path";

/// `telemetry_overhead_measurement` value for the measurement this
/// crate performs since v7: off/on timings alternate round-robin
/// ([`TELEMETRY_AB_ROUNDS`] rounds) and each arm keeps its best round,
/// so slow host-frequency drift between the arms cancels instead of
/// appearing as a large negative overhead.
pub const TELEMETRY_OVERHEAD_INTERLEAVED: &str = "interleaved-ab";

/// Interleaved off/on timing rounds per arm for the telemetry
/// overhead measurement.
pub const TELEMETRY_AB_ROUNDS: usize = 3;

/// Lowest `telemetry_overhead_frac` validation accepts: the
/// interleaved measurement bounds timer noise well under 5 %.
pub const TELEMETRY_OVERHEAD_FLOOR: f64 = -0.05;

fn sweep_config(method: &str, opts: &SweepOptions) -> Result<SimConfig, DcfbError> {
    let mut cfg = runs::try_method_config(method)?;
    cfg.warmup_instrs = opts.warmup;
    cfg.measure_instrs = opts.measure;
    Ok(cfg)
}

/// Runs the timed sweep: one sequential pass, one parallel pass at
/// `opts.jobs`, plus two single-run throughput timings. Both passes
/// execute the identical `(workload, method)` cross product. The
/// served-mix numbers (`serve`) are measured by the caller through an
/// in-process `dcfb serve` instance (the serve crate sits above this
/// one) and recorded verbatim.
///
/// # Errors
///
/// Returns [`DcfbError::UnknownMethod`] for a bad method name in
/// `opts.methods`.
pub fn run_bench_sweep(
    opts: &SweepOptions,
    serve: &ServeMixMeasurement,
) -> Result<BenchSweepReport, DcfbError> {
    let ws = workloads();
    let mut pairs: Vec<(Workload, SimConfig)> = Vec::new();
    for m in &opts.methods {
        let cfg = sweep_config(m, opts)?;
        for w in &ws {
            pairs.push((w.clone(), cfg.clone()));
        }
    }
    // Warm the image cache outside the timed region so both passes
    // measure simulation throughput, not one-time image construction.
    for (w, cfg) in &pairs {
        let _ = runs::image_for(w, cfg.isa);
    }

    let t0 = Instant::now();
    let seq: Vec<SimReport> = pairs
        .iter()
        .map(|(w, cfg)| runs::run(w, cfg.clone()))
        .collect();
    let seq_seconds = t0.elapsed().as_secs_f64().max(1e-9);

    let t1 = Instant::now();
    let par: Vec<SimReport> = parallel_map_jobs(pairs.clone(), opts.jobs, |(w, cfg)| {
        runs::run(w, cfg.clone())
    });
    let par_seconds = t1.elapsed().as_secs_f64().max(1e-9);

    let deterministic = seq.len() == par.len()
        && seq
            .iter()
            .zip(par.iter())
            .all(|(a, b)| a.digest() == b.digest());

    let single_run_instrs = opts.warmup + opts.measure;
    let single_ips = |method: &str| -> Result<f64, DcfbError> {
        let cfg = sweep_config(method, opts)?;
        let w = ws.first().cloned();
        let Some(w) = w else {
            return Ok(0.0);
        };
        let t = Instant::now();
        let _ = runs::run(&w, cfg);
        Ok(single_run_instrs as f64 / t.elapsed().as_secs_f64().max(1e-9))
    };
    let single_run_baseline_ips = single_ips("Baseline")?;

    // Telemetry overhead, measured as interleaved A/B rounds: the
    // off and on timings alternate (off, on, off, on, ...) and each arm
    // keeps its fastest round. A one-shot pair (v6) let host frequency
    // drift between the two distant timings masquerade as a −17.5 %
    // "overhead"; interleaving exposes both arms to the same drift and
    // the per-arm minimum discards transient stalls.
    let (single_run_dcfb_ips, single_run_dcfb_telemetry_ips, telemetry_issued, telemetry_accurate) =
        match ws.first() {
            None => (0.0, 0.0, 0, 0),
            Some(w) => {
                let cfg = sweep_config("SN4L+Dis+BTB", opts)?;
                let mut best_off = f64::INFINITY;
                let mut best_on = f64::INFINITY;
                let mut issued = 0u64;
                let mut accurate = 0u64;
                for _ in 0..TELEMETRY_AB_ROUNDS {
                    let t = Instant::now();
                    let _ = runs::run(w, cfg.clone());
                    best_off = best_off.min(t.elapsed().as_secs_f64().max(1e-9));
                    let t = Instant::now();
                    let (_report, telem) = runs::run_profiled(w, cfg.clone());
                    best_on = best_on.min(t.elapsed().as_secs_f64().max(1e-9));
                    // Deterministic simulation: every round issues the same
                    // prefetches, so the last round's counters stand for all.
                    issued = telem.doc.timeliness.iter().map(|row| row.issued).sum();
                    accurate = telem.doc.timeliness.iter().map(|row| row.accurate).sum();
                }
                (
                    single_run_instrs as f64 / best_off,
                    single_run_instrs as f64 / best_on,
                    issued,
                    accurate,
                )
            }
        };
    let telemetry_overhead_frac =
        if single_run_dcfb_ips > 0.0 && single_run_dcfb_telemetry_ips > 0.0 {
            1.0 - single_run_dcfb_telemetry_ips / single_run_dcfb_ips
        } else {
            0.0
        };

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u64;

    // Sharded single-run timing: the same SN4L+Dis+BTB run sliced into
    // K time shards on a K-worker pool, plus the K=1 digest-identity
    // probe the sharded executor's correctness contract rests on.
    let shards = opts.jobs.max(2);
    let (single_run_sharded_ips, shard_warmup_overlap, shard_digest_identity) = match ws.first() {
        None => (0.0, 1, true),
        Some(w) => {
            let cfg = sweep_config("SN4L+Dis+BTB", opts)?;
            let image = runs::image_for(w, cfg.isa);
            let seq_digest = runs::run(w, cfg.clone()).digest();
            let k1 = ShardOptions {
                shards: 1,
                warmup_overlap: None,
                jobs: 1,
            };
            let k1_run = run_sharded(&cfg, &image, runs::TRACE_SEED, &k1)?;
            let identity = k1_run.merged.digest() == seq_digest;
            let sharded_opts = ShardOptions::new(shards);
            let overlap = sharded_opts.overlap_for(cfg.warmup_instrs);
            let t = Instant::now();
            let _ = run_sharded(&cfg, &image, runs::TRACE_SEED, &sharded_opts)?;
            let ips = single_run_instrs as f64 / t.elapsed().as_secs_f64().max(1e-9);
            (ips, overlap, identity)
        }
    };
    let sharded_speedup = if single_run_dcfb_ips > 0.0 && single_run_sharded_ips > 0.0 {
        single_run_sharded_ips / single_run_dcfb_ips
    } else {
        0.0
    };
    // The quick fuzz campaign, timed sequentially: deterministic work,
    // so the ops/s is a clean engine-throughput number and the coverage
    // fraction is identical on every host.
    let (fuzz_ops_per_sec, fuzz_coverage_frac) = crate::fuzz::quick_campaign_metrics(42)?;

    // The workload-source axis: one tenant-mix throughput row through
    // the registry's `mix:` source, plus the K=1 digest-identity probe
    // the interleaver's determinism contract rests on. A single-workload
    // sweep (DCFB_WORKLOADS=1) mixes the workload with itself.
    let mix_workload = match (ws.first(), ws.get(1)) {
        (Some(a), Some(b)) => format!("mix:{}+{}", a.name, b.name),
        (Some(a), None) => format!("mix:{}+{}", a.name, a.name),
        _ => String::new(),
    };
    let (mix_single_run_ips, mix_digest_identity) = if mix_workload.is_empty() {
        (0.0, true)
    } else {
        let cfg = sweep_config("SN4L+Dis+BTB", opts)?;
        let resolved = runs::resolved_for(&mix_workload, cfg.isa)?;
        let t = Instant::now();
        let seq_report = run_resolved(&resolved, cfg.clone(), runs::TRACE_SEED)?;
        let ips = single_run_instrs as f64 / t.elapsed().as_secs_f64().max(1e-9);
        let k1 = ShardOptions {
            shards: 1,
            warmup_overlap: None,
            jobs: 1,
        };
        let k1_run = run_sharded_resolved(&cfg, &resolved, runs::TRACE_SEED, &k1)?;
        (ips, k1_run.merged.digest() == seq_report.digest())
    };

    let jobs_warning = if opts.jobs <= 1 {
        format!(
            "jobs == 1 on a {host_cores}-core host: the parallel and sharded \
             passes ran serially, so sweep_speedup and sharded_speedup \
             understate what a multi-core host would measure"
        )
    } else {
        String::new()
    };

    Ok(BenchSweepReport {
        schema: BENCH_SWEEP_SCHEMA.to_owned(),
        host_cores,
        jobs: opts.jobs as u64,
        workloads: ws.len() as u64,
        methods: opts.methods.len() as u64,
        runs: pairs.len() as u64,
        warmup_instrs: opts.warmup,
        measure_instrs: opts.measure,
        seq_seconds,
        par_seconds,
        sweep_speedup: seq_seconds / par_seconds,
        deterministic,
        single_run_instrs,
        single_run_baseline_ips,
        single_run_dcfb_ips,
        single_run_dcfb_telemetry_ips,
        telemetry_overhead_frac,
        telemetry_overhead_measurement: TELEMETRY_OVERHEAD_INTERLEAVED.to_owned(),
        telemetry_issued_prefetches: telemetry_issued,
        telemetry_accurate_prefetches: telemetry_accurate,
        shards: shards as u64,
        shard_warmup_overlap,
        single_run_sharded_ips,
        sharded_speedup,
        shard_digest_identity,
        jobs_warning,
        serve_submit_jobs: serve.submit_jobs,
        serve_cache_hit_frac: serve.cache_hit_frac,
        serve_jobs_per_sec: serve.jobs_per_sec,
        fuzz_ops_per_sec,
        fuzz_coverage_frac,
        workload_source_kinds: "synthetic,mix".to_owned(),
        mix_workload,
        mix_single_run_ips,
        mix_digest_identity,
    })
}

impl BenchSweepReport {
    /// Serializes as a flat JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut put = |key: &str, value: String, last: bool| {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(&value);
            if !last {
                out.push(',');
            }
            out.push('\n');
        };
        put("schema", format!("\"{}\"", self.schema), false);
        put("host_cores", self.host_cores.to_string(), false);
        put("jobs", self.jobs.to_string(), false);
        put("workloads", self.workloads.to_string(), false);
        put("methods", self.methods.to_string(), false);
        put("runs", self.runs.to_string(), false);
        put("warmup_instrs", self.warmup_instrs.to_string(), false);
        put("measure_instrs", self.measure_instrs.to_string(), false);
        put("seq_seconds", format_f64(self.seq_seconds), false);
        put("par_seconds", format_f64(self.par_seconds), false);
        put("sweep_speedup", format_f64(self.sweep_speedup), false);
        put("deterministic", self.deterministic.to_string(), false);
        put(
            "single_run_instrs",
            self.single_run_instrs.to_string(),
            false,
        );
        put(
            "single_run_baseline_ips",
            format_f64(self.single_run_baseline_ips),
            false,
        );
        put(
            "single_run_dcfb_ips",
            format_f64(self.single_run_dcfb_ips),
            false,
        );
        put(
            "single_run_dcfb_telemetry_ips",
            format_f64(self.single_run_dcfb_telemetry_ips),
            false,
        );
        put(
            "telemetry_overhead_frac",
            format_f64(self.telemetry_overhead_frac),
            false,
        );
        put(
            "telemetry_overhead_measurement",
            format!("\"{}\"", self.telemetry_overhead_measurement),
            false,
        );
        put(
            "telemetry_issued_prefetches",
            self.telemetry_issued_prefetches.to_string(),
            false,
        );
        put(
            "telemetry_accurate_prefetches",
            self.telemetry_accurate_prefetches.to_string(),
            false,
        );
        put("shards", self.shards.to_string(), false);
        put(
            "shard_warmup_overlap",
            self.shard_warmup_overlap.to_string(),
            false,
        );
        put(
            "single_run_sharded_ips",
            format_f64(self.single_run_sharded_ips),
            false,
        );
        put("sharded_speedup", format_f64(self.sharded_speedup), false);
        put(
            "shard_digest_identity",
            self.shard_digest_identity.to_string(),
            false,
        );
        put("jobs_warning", format!("\"{}\"", self.jobs_warning), false);
        put(
            "serve_submit_jobs",
            self.serve_submit_jobs.to_string(),
            false,
        );
        put(
            "serve_cache_hit_frac",
            format_f64(self.serve_cache_hit_frac),
            false,
        );
        put(
            "serve_jobs_per_sec",
            format_f64(self.serve_jobs_per_sec),
            false,
        );
        put("fuzz_ops_per_sec", format_f64(self.fuzz_ops_per_sec), false);
        put(
            "fuzz_coverage_frac",
            format_f64(self.fuzz_coverage_frac),
            false,
        );
        put(
            "workload_source_kinds",
            format!("\"{}\"", self.workload_source_kinds),
            false,
        );
        put("mix_workload", format!("\"{}\"", self.mix_workload), false);
        put(
            "mix_single_run_ips",
            format_f64(self.mix_single_run_ips),
            false,
        );
        put(
            "mix_digest_identity",
            self.mix_digest_identity.to_string(),
            true,
        );
        out.push_str("}\n");
        out
    }

    /// Parses the flat JSON object written by [`BenchSweepReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`DcfbError::Config`] on malformed JSON or missing/mistyped
    /// fields.
    pub fn from_json(text: &str) -> Result<Self, DcfbError> {
        let fields = parse_flat_object(text)?;
        let get = |key: &str| -> Result<&JsonScalar, DcfbError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| {
                    DcfbError::Config(format!("BENCH_sweep.json: missing field {key:?}"))
                })
        };
        let u64_field = |key: &str| -> Result<u64, DcfbError> {
            match get(key)? {
                JsonScalar::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as u64),
                other => Err(DcfbError::Config(format!(
                    "BENCH_sweep.json: field {key:?} must be an unsigned integer, got {other:?}"
                ))),
            }
        };
        let f64_field = |key: &str| -> Result<f64, DcfbError> {
            match get(key)? {
                JsonScalar::Number(n) => Ok(*n),
                other => Err(DcfbError::Config(format!(
                    "BENCH_sweep.json: field {key:?} must be a number, got {other:?}"
                ))),
            }
        };
        let string_field = |key: &str| -> Result<String, DcfbError> {
            match get(key)? {
                JsonScalar::String(s) => Ok(s.clone()),
                other => Err(DcfbError::Config(format!(
                    "BENCH_sweep.json: field {key:?} must be a string, got {other:?}"
                ))),
            }
        };
        let bool_field = |key: &str| -> Result<bool, DcfbError> {
            match get(key)? {
                JsonScalar::Bool(b) => Ok(*b),
                other => Err(DcfbError::Config(format!(
                    "BENCH_sweep.json: field {key:?} must be a boolean, got {other:?}"
                ))),
            }
        };
        let schema = string_field("schema")?;
        let telemetry_overhead_measurement = string_field("telemetry_overhead_measurement")?;
        let deterministic = bool_field("deterministic")?;
        Ok(BenchSweepReport {
            schema,
            host_cores: u64_field("host_cores")?,
            jobs: u64_field("jobs")?,
            workloads: u64_field("workloads")?,
            methods: u64_field("methods")?,
            runs: u64_field("runs")?,
            warmup_instrs: u64_field("warmup_instrs")?,
            measure_instrs: u64_field("measure_instrs")?,
            seq_seconds: f64_field("seq_seconds")?,
            par_seconds: f64_field("par_seconds")?,
            sweep_speedup: f64_field("sweep_speedup")?,
            deterministic,
            single_run_instrs: u64_field("single_run_instrs")?,
            single_run_baseline_ips: f64_field("single_run_baseline_ips")?,
            single_run_dcfb_ips: f64_field("single_run_dcfb_ips")?,
            single_run_dcfb_telemetry_ips: f64_field("single_run_dcfb_telemetry_ips")?,
            telemetry_overhead_frac: f64_field("telemetry_overhead_frac")?,
            telemetry_overhead_measurement,
            telemetry_issued_prefetches: u64_field("telemetry_issued_prefetches")?,
            telemetry_accurate_prefetches: u64_field("telemetry_accurate_prefetches")?,
            shards: u64_field("shards")?,
            shard_warmup_overlap: u64_field("shard_warmup_overlap")?,
            single_run_sharded_ips: f64_field("single_run_sharded_ips")?,
            sharded_speedup: f64_field("sharded_speedup")?,
            shard_digest_identity: bool_field("shard_digest_identity")?,
            jobs_warning: string_field("jobs_warning")?,
            serve_submit_jobs: u64_field("serve_submit_jobs")?,
            serve_cache_hit_frac: f64_field("serve_cache_hit_frac")?,
            serve_jobs_per_sec: f64_field("serve_jobs_per_sec")?,
            fuzz_ops_per_sec: f64_field("fuzz_ops_per_sec")?,
            fuzz_coverage_frac: f64_field("fuzz_coverage_frac")?,
            workload_source_kinds: string_field("workload_source_kinds")?,
            mix_workload: string_field("mix_workload")?,
            mix_single_run_ips: f64_field("mix_single_run_ips")?,
            mix_digest_identity: bool_field("mix_digest_identity")?,
        })
    }

    /// Structural validity: the schema tag matches and every metric is
    /// non-empty and internally consistent. This is what the verify
    /// flow checks after a smoke sweep.
    ///
    /// # Errors
    ///
    /// [`DcfbError::Config`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), DcfbError> {
        let fail = |what: &str| {
            Err(DcfbError::Config(format!(
                "BENCH_sweep.json invalid: {what}"
            )))
        };
        if self.schema != BENCH_SWEEP_SCHEMA {
            return fail(&format!(
                "schema {:?} != {BENCH_SWEEP_SCHEMA:?}",
                self.schema
            ));
        }
        if self.host_cores < 1 || self.jobs < 1 {
            return fail("host_cores and jobs must be >= 1");
        }
        if self.workloads < 1 || self.methods < 1 {
            return fail("workloads and methods must be non-empty");
        }
        if self.runs != self.workloads * self.methods {
            return fail("runs must equal workloads * methods");
        }
        if self.warmup_instrs + self.measure_instrs == 0 {
            return fail("warmup + measure must be non-zero");
        }
        if self.seq_seconds <= 0.0
            || self.par_seconds <= 0.0
            || !self.seq_seconds.is_finite()
            || !self.par_seconds.is_finite()
        {
            return fail("pass timings must be positive");
        }
        let ratio = self.seq_seconds / self.par_seconds;
        if !(self.sweep_speedup > 0.0
            && (self.sweep_speedup - ratio).abs() <= 1e-6 * ratio.max(1.0))
        {
            return fail("sweep_speedup must equal seq_seconds / par_seconds");
        }
        if !self.deterministic {
            return fail("parallel pass diverged from the sequential pass");
        }
        let ips_ok = |x: f64| x.is_finite() && x > 0.0;
        if self.single_run_instrs == 0
            || !ips_ok(self.single_run_baseline_ips)
            || !ips_ok(self.single_run_dcfb_ips)
            || !ips_ok(self.single_run_dcfb_telemetry_ips)
        {
            return fail("single-run throughput metrics must be positive");
        }
        let expected = 1.0 - self.single_run_dcfb_telemetry_ips / self.single_run_dcfb_ips;
        if !self.telemetry_overhead_frac.is_finite()
            || (self.telemetry_overhead_frac - expected).abs() > 1e-6 * expected.abs().max(1.0)
        {
            return fail("telemetry_overhead_frac must equal 1 - telemetry_ips / dcfb_ips");
        }
        if self.telemetry_overhead_measurement != TELEMETRY_OVERHEAD_INTERLEAVED
            && self.telemetry_overhead_measurement != TELEMETRY_OVERHEAD_ON_PATH
            && self.telemetry_overhead_measurement != "off-path"
        {
            return fail(&format!(
                "telemetry_overhead_measurement must be \"interleaved-ab\", \"on-path\", or \
                 \"off-path\", got {:?}",
                self.telemetry_overhead_measurement
            ));
        }
        if self.telemetry_overhead_frac < TELEMETRY_OVERHEAD_FLOOR {
            return fail(&format!(
                "telemetry_overhead_frac {} below the {TELEMETRY_OVERHEAD_FLOOR} floor: the \
                 interleaved A/B measurement cannot legitimately make telemetry look > 5 % \
                 faster than no telemetry",
                self.telemetry_overhead_frac
            ));
        }
        if self.telemetry_accurate_prefetches > self.telemetry_issued_prefetches {
            return fail("accurate prefetches cannot exceed issued prefetches");
        }
        if self.shards < 2 {
            return fail("sharded timing must use at least 2 shards");
        }
        if self.shard_warmup_overlap == 0 {
            return fail("shard_warmup_overlap must be positive");
        }
        if !ips_ok(self.single_run_sharded_ips) {
            return fail("single_run_sharded_ips must be positive");
        }
        let expected_sharded = self.single_run_sharded_ips / self.single_run_dcfb_ips;
        if !self.sharded_speedup.is_finite()
            || (self.sharded_speedup - expected_sharded).abs()
                > 1e-6 * expected_sharded.abs().max(1.0)
        {
            return fail("sharded_speedup must equal sharded_ips / dcfb_ips");
        }
        if !self.shard_digest_identity {
            return fail("K=1 sharded digest diverged from the sequential run");
        }
        if (self.jobs == 1) == self.jobs_warning.is_empty() {
            return fail("jobs_warning must be non-empty exactly when jobs == 1");
        }
        if self.serve_submit_jobs < 1 {
            return fail("serve_submit_jobs must be >= 1");
        }
        if !self.serve_cache_hit_frac.is_finite()
            || !(0.0..=1.0).contains(&self.serve_cache_hit_frac)
        {
            return fail("serve_cache_hit_frac must lie in [0, 1]");
        }
        if !ips_ok(self.serve_jobs_per_sec) {
            return fail("serve_jobs_per_sec must be positive");
        }
        if !ips_ok(self.fuzz_ops_per_sec) {
            return fail("fuzz_ops_per_sec must be positive");
        }
        if !self.fuzz_coverage_frac.is_finite()
            || self.fuzz_coverage_frac <= 0.0
            || self.fuzz_coverage_frac > 1.0
        {
            return fail("fuzz_coverage_frac must lie in (0, 1]");
        }
        if self.workload_source_kinds != "synthetic,mix" {
            return fail(&format!(
                "workload_source_kinds must be \"synthetic,mix\", got {:?}",
                self.workload_source_kinds
            ));
        }
        if !self.mix_workload.starts_with("mix:") {
            return fail(&format!(
                "mix_workload must be a mix: spec, got {:?}",
                self.mix_workload
            ));
        }
        if !ips_ok(self.mix_single_run_ips) {
            return fail("mix_single_run_ips must be positive");
        }
        if !self.mix_digest_identity {
            return fail("mix K=1 sharded digest diverged from the sequential resolved run");
        }
        Ok(())
    }
}

fn format_f64(x: f64) -> String {
    // Rust's shortest-roundtrip Display is JSON-compatible for finite
    // values; timings are clamped positive before they get here.
    if x.is_finite() {
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_owned()
    }
}

/// One scalar JSON value in the flat `BENCH_sweep.json` object.
#[derive(Clone, Debug, PartialEq)]
enum JsonScalar {
    String(String),
    Number(f64),
    Bool(bool),
}

/// Parses a flat JSON object of scalar values (string, number, true,
/// false) — exactly the shape [`BenchSweepReport::to_json`] writes.
fn parse_flat_object(text: &str) -> Result<Vec<(String, JsonScalar)>, DcfbError> {
    let mut p = Scanner {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut out = Vec::new();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let value = p.scalar()?;
            out.push((key, value));
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(out)
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn err(&self, what: &str) -> DcfbError {
        DcfbError::Config(format!(
            "malformed bench-sweep JSON at byte {}: {what}",
            self.pos
        ))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\n' | b'\r' | b'\t') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DcfbError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, DcfbError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                if s.contains('\\') {
                    return Err(self.err("escapes are not used in bench-sweep JSON"));
                }
                self.pos += 1;
                return Ok(s.to_owned());
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn scalar(&mut self) -> Result<JsonScalar, DcfbError> {
        match self.peek() {
            Some(b'"') => Ok(JsonScalar::String(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonScalar::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonScalar::Bool(false))
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while let Some(&b) = self.bytes.get(self.pos) {
                    if matches!(b, b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(JsonScalar::Number)
                    .ok_or_else(|| self.err("bad number"))
            }
            _ => Err(self.err("expected a scalar value")),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 8] {
            let out = parallel_map_jobs(items.clone(), jobs, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let out: Vec<u64> = parallel_map_jobs(Vec::<u64>::new(), 8, |&x| x);
        assert!(out.is_empty());
        let out = parallel_map_jobs(vec![41u64], 8, |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map_jobs((0..16).collect::<Vec<u64>>(), 4, |&x| {
                assert!(x != 7, "injected fault");
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn jobs_defaults_to_host_parallelism_when_env_unset() {
        // Pin the satellite behaviour: with DCFB_JOBS absent, the
        // worker count is the host's available parallelism, not 1.
        // Guarded because the test harness may legitimately run with
        // the variable exported.
        if std::env::var_os(JOBS_ENV).is_some() {
            return;
        }
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(jobs(), host);
    }

    fn sample_report() -> BenchSweepReport {
        BenchSweepReport {
            schema: BENCH_SWEEP_SCHEMA.to_owned(),
            host_cores: 4,
            jobs: 4,
            workloads: 2,
            methods: 4,
            runs: 8,
            warmup_instrs: 10_000,
            measure_instrs: 50_000,
            seq_seconds: 2.0,
            par_seconds: 0.8,
            sweep_speedup: 2.5,
            deterministic: true,
            single_run_instrs: 60_000,
            single_run_baseline_ips: 1.5e6,
            single_run_dcfb_ips: 1.1e6,
            single_run_dcfb_telemetry_ips: 1.0e6,
            telemetry_overhead_frac: 1.0 - 1.0e6 / 1.1e6,
            telemetry_overhead_measurement: TELEMETRY_OVERHEAD_INTERLEAVED.to_owned(),
            telemetry_issued_prefetches: 9_000,
            telemetry_accurate_prefetches: 7_500,
            shards: 4,
            shard_warmup_overlap: 2_500,
            single_run_sharded_ips: 3.3e6,
            sharded_speedup: 3.3e6 / 1.1e6,
            shard_digest_identity: true,
            jobs_warning: String::new(),
            serve_submit_jobs: 16,
            serve_cache_hit_frac: 0.5,
            serve_jobs_per_sec: 12.5,
            fuzz_ops_per_sec: 85_000.0,
            fuzz_coverage_frac: 0.65,
            workload_source_kinds: "synthetic,mix".to_owned(),
            mix_workload: "mix:OLTP (DB A)+Web (Apache),quantum=10000".to_owned(),
            mix_single_run_ips: 0.9e6,
            mix_digest_identity: true,
        }
    }

    #[test]
    fn bench_sweep_json_round_trips_and_validates() {
        let r = sample_report();
        let json = r.to_json();
        let back = BenchSweepReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        back.validate().unwrap();
    }

    #[test]
    fn validation_rejects_broken_reports() {
        let mut r = sample_report();
        r.schema = "wrong".into();
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.telemetry_overhead_measurement = "sideways".into();
        assert!(r.validate().is_err());
        r.telemetry_overhead_measurement = "off-path".into();
        assert!(r.validate().is_ok());

        let mut r = sample_report();
        r.runs = 5; // != workloads * methods
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.par_seconds = 0.0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.sweep_speedup = 99.0; // inconsistent with the timings
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.deterministic = false;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.single_run_dcfb_ips = 0.0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.single_run_dcfb_telemetry_ips = 0.0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.telemetry_overhead_frac = 0.5; // inconsistent with the ips pair
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.telemetry_accurate_prefetches = r.telemetry_issued_prefetches + 1;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.shards = 1;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.shard_warmup_overlap = 0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.sharded_speedup = 99.0; // inconsistent with the ips pair
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.shard_digest_identity = false;
        assert!(r.validate().is_err());

        // jobs_warning must track jobs == 1 in both directions.
        let mut r = sample_report();
        r.jobs = 1;
        assert!(r.validate().is_err());
        r.jobs_warning = "jobs == 1: speedups understate multi-core hosts".into();
        assert!(r.validate().is_ok());
        r.jobs = 4;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.serve_submit_jobs = 0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.serve_cache_hit_frac = 1.5;
        assert!(r.validate().is_err());
        r.serve_cache_hit_frac = f64::NAN;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.serve_jobs_per_sec = 0.0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.fuzz_ops_per_sec = 0.0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.fuzz_coverage_frac = 0.0;
        assert!(r.validate().is_err());
        r.fuzz_coverage_frac = 1.25;
        assert!(r.validate().is_err());
        r.fuzz_coverage_frac = f64::NAN;
        assert!(r.validate().is_err());
        r.fuzz_coverage_frac = 1.0;
        assert!(r.validate().is_ok());

        // The satellite fix: a drift-sized negative overhead fraction
        // (the v6 artifact) is rejected, small timer noise is not.
        let mut r = sample_report();
        r.single_run_dcfb_telemetry_ips = r.single_run_dcfb_ips * 1.175;
        r.telemetry_overhead_frac = 1.0 - 1.175;
        assert!(r.validate().is_err());
        let mut r = sample_report();
        r.single_run_dcfb_telemetry_ips = r.single_run_dcfb_ips * 1.02;
        r.telemetry_overhead_frac = 1.0 - 1.02;
        assert!(r.validate().is_ok());

        let mut r = sample_report();
        r.workload_source_kinds = "synthetic".into();
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.mix_workload = "OLTP (DB A)".into();
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.mix_single_run_ips = 0.0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.mix_digest_identity = false;
        assert!(r.validate().is_err());
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"schema\": }",
            "{\"schema\": \"x\"} trailing",
            "[1, 2]",
            "{\"schema\": \"x\", \"jobs\": \"not-a-number\"}",
        ] {
            assert!(BenchSweepReport::from_json(bad).is_err(), "{bad:?}");
        }
        // Missing fields are typed errors too.
        let err = BenchSweepReport::from_json("{\"schema\": \"dcfb-bench-sweep-v1\"}").unwrap_err();
        assert!(matches!(err, DcfbError::Config(_)));
    }
}
