//! The deterministic chaos campaign behind `dcfb chaos`: seeded fault
//! scenarios driven through the real stack — supervised execution
//! ([`crate::supervisor`]), the binary trace readers with injected
//! faults ([`dcfb_trace::FaultyReader`] / [`dcfb_trace::FaultyStream`]),
//! and checkpoint salvage ([`crate::checkpoint`]) — with every outcome
//! checked against explicit invariants:
//!
//! * the pool always drains: every batch accounts for every submitted
//!   job as completed, retried, or quarantined;
//! * every fault-free job's [`SimReport::digest`](dcfb_sim::SimReport)
//!   matches the checked-in conformance goldens — supervision must not
//!   perturb a healthy run by a single bit;
//! * each fault scenario lands in its expected terminal state
//!   (transient faults retry to completion, permanent faults
//!   quarantine, salvageable corruption completes leniently);
//! * a checkpoint torn mid-write resumes to byte-identical merged
//!   output.
//!
//! Everything is a pure function of the seed: the campaign uses
//! instruction-budget deadlines and zero-duration backoff units, so two
//! runs with the same seed produce the same report on any host.

use crate::checkpoint::Checkpoint;
use crate::supervisor::{
    Deadline, JobEnvelope, JobStatus, SupervisionReport, Supervisor, SupervisorOptions,
};
use dcfb_cache::CacheConfig;
use dcfb_conformance::golden::{fixture_digest, fixture_image, goldens, FIXTURE_TRACE_SEED};
use dcfb_errors::DcfbError;
use dcfb_sim::{
    merge_reports, plan_shards, record_trace, run_shard, run_sharded, shard_stream, RunControl,
    ShardOptions, SimConfig, SimReport, Simulator,
};
use dcfb_telemetry::{CounterSet, Ctr};
use dcfb_trace::{
    write_binary_v2, FaultyReader, FaultyStream, IsaMode, ReadMode, RecordedCode, StreamFault,
};
use dcfb_workloads::{all_workloads, ProgramImage, Walker};
use std::io::Cursor;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Instruction budget used by the deadline scenarios — far below the
/// fixture's warmup, so the cancellation lands mid-simulation.
const TINY_BUDGET: u64 = 5_000;
/// Where the injected stream panic fires (mid-warmup).
const PANIC_AT: u64 = 10_000;
/// Records captured into the fault-injected binary trace.
const TRACE_RECORDS: u64 = 20_000;

/// Chaos campaign knobs.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOptions {
    /// Seed for every randomized choice (backoff jitter, truncation
    /// offsets). The same seed reproduces the same campaign.
    pub seed: u64,
    /// Quick mode: a golden subset instead of the full registry, for
    /// the tier-1 smoke path.
    pub quick: bool,
    /// Worker threads for the supervised batches.
    pub jobs: usize,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 42,
            quick: false,
            jobs: 2,
        }
    }
}

/// One campaign row: a job and how it ended.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Campaign phase (`golden`, `faults`, `resume`).
    pub phase: &'static str,
    /// Job / scenario identifier.
    pub job: String,
    /// Terminal status label.
    pub status: &'static str,
    /// Attempts executed.
    pub attempts: u32,
    /// Attempts cancelled at a deadline.
    pub timeouts: u32,
    /// Scenario-specific detail.
    pub detail: String,
}

/// The campaign's final report.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The seed the campaign ran under.
    pub seed: u64,
    /// Whether quick mode was on.
    pub quick: bool,
    /// One row per job, in execution order.
    pub rows: Vec<ChaosRow>,
    /// Aggregated supervision counters across every batch.
    pub counters: CounterSet,
    /// Invariant violations; empty means the campaign passed.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn count(&self, status: &str) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Human-readable campaign summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos campaign (seed {}, {} mode)\n",
            self.seed,
            if self.quick { "quick" } else { "full" }
        );
        let _ = writeln!(
            out,
            "| phase | job | status | attempts | timeouts | detail |"
        );
        let _ = writeln!(out, "| --- | --- | --- | --- | --- | --- |");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                r.phase,
                r.job,
                r.status,
                r.attempts,
                r.timeouts,
                r.detail.replace('|', "\\|")
            );
        }
        let (c, rt, q) = (
            self.count("completed"),
            self.count("retried"),
            self.count("quarantined"),
        );
        let _ = writeln!(
            out,
            "\njobs: {} submitted = {c} completed + {rt} retried + {q} quarantined",
            self.rows.len()
        );
        let _ = writeln!(
            out,
            "counters: retries {} / timeouts {} / quarantines {}",
            self.counters.get(Ctr::JobRetries),
            self.counters.get(Ctr::JobTimeouts),
            self.counters.get(Ctr::JobQuarantines)
        );
        if self.failures.is_empty() {
            let _ = writeln!(out, "\nall invariants held");
        } else {
            let _ = writeln!(out, "\n{} invariant violation(s):", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(out, "  - {f}");
            }
        }
        out
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fixture-scale configuration for `method` — identical to what
/// [`fixture_digest`] runs, so a clean chaos run reproduces the golden
/// digest bit-for-bit.
fn chaos_config(method: &str) -> Result<SimConfig, DcfbError> {
    let mut cfg = SimConfig::for_method(method).ok_or_else(|| DcfbError::UnknownMethod {
        name: method.to_owned(),
        available: dcfb_prefetch::method_names().map(str::to_owned).collect(),
    })?;
    cfg.warmup_instrs = 60_000;
    cfg.measure_instrs = 120_000;
    cfg.l1i = CacheConfig::from_kib(8, 8);
    Ok(cfg)
}

fn run_err(job: &JobEnvelope, message: String) -> DcfbError {
    DcfbError::Run {
        workload: job.workload.clone(),
        method: job.method.clone(),
        message,
    }
}

/// A clean fixture run for `method`, producing the digest the goldens
/// pin.
fn golden_run(env: &JobEnvelope, image: &Arc<ProgramImage>) -> Result<String, DcfbError> {
    fixture_digest(image, &env.method, false).map_err(|e| run_err(env, e))
}

fn merge_counters(acc: &mut CounterSet, more: &CounterSet) {
    for c in Ctr::ALL {
        acc.add(c, more.get(c));
    }
}

/// Campaign state threaded through the phases.
struct Campaign {
    opts: ChaosOptions,
    image: Arc<ProgramImage>,
    label_workload: String,
    rows: Vec<ChaosRow>,
    counters: CounterSet,
    failures: Vec<String>,
}

impl Campaign {
    fn envelope(&self, method: &str) -> JobEnvelope {
        JobEnvelope::new(self.label_workload.as_str(), method)
    }

    fn fail(&mut self, what: impl Into<String>) {
        self.failures.push(what.into());
    }

    /// Folds one supervised batch into the campaign: drain check,
    /// counter aggregation, one row per record.
    fn absorb(&mut self, phase: &'static str, report: &SupervisionReport<String>) {
        if !report.accounted() {
            self.fail(format!(
                "{phase}: pool did not drain ({} submitted, statuses do not sum)",
                report.submitted()
            ));
        }
        merge_counters(&mut self.counters, &report.counters);
        for rec in &report.records {
            let detail = match (&rec.value(), rec.status()) {
                (Some(v), _) => {
                    let v = v.as_str();
                    if v.len() > 40 {
                        format!("{}…", &v[..40.min(v.len())])
                    } else {
                        v.to_owned()
                    }
                }
                (None, _) => match &rec.outcome {
                    crate::supervisor::JobOutcome::Quarantined(e) => {
                        let s = e.to_string();
                        if s.len() > 60 {
                            format!("{}…", &s[..60])
                        } else {
                            s
                        }
                    }
                    crate::supervisor::JobOutcome::Completed(_) => String::new(),
                },
            };
            self.rows.push(ChaosRow {
                phase,
                job: rec.id.clone(),
                status: rec.status().label(),
                attempts: rec.attempts,
                timeouts: rec.timeouts,
                detail,
            });
        }
    }

    /// Asserts the single record of a one-job batch ended as expected.
    fn expect_status(
        &mut self,
        scenario: &str,
        report: &SupervisionReport<String>,
        want: JobStatus,
    ) {
        match report.records.first() {
            Some(rec) if rec.status() == want => {}
            Some(rec) => self.fail(format!(
                "{scenario}: expected {}, got {} after {} attempt(s)",
                want.label(),
                rec.status().label(),
                rec.attempts
            )),
            None => self.fail(format!("{scenario}: batch produced no record")),
        }
    }
}

/// Runs the full campaign. Invariant violations are collected in
/// [`ChaosReport::failures`], never raised — the caller decides the
/// exit path.
pub fn run_chaos(opts: &ChaosOptions) -> ChaosReport {
    let mut campaign = Campaign {
        opts: *opts,
        image: fixture_image(),
        // Envelopes need a workload label; the chaos fixture is the
        // conformance image, so the catalog entry is a label only.
        label_workload: all_workloads().remove(0).name.to_owned(),
        rows: Vec::new(),
        counters: CounterSet::new(),
        failures: Vec::new(),
    };
    let sup = Supervisor::new(SupervisorOptions {
        max_attempts: 3,
        seed: opts.seed,
        unit: Duration::ZERO,
        jobs: opts.jobs.max(1),
        ..SupervisorOptions::default()
    });
    let golds = match goldens() {
        Ok(g) => g,
        Err(e) => {
            campaign.fail(format!("cannot parse goldens: {e}"));
            Vec::new()
        }
    };
    phase_golden(&mut campaign, &sup, &golds);
    phase_faults(&mut campaign, &sup, &golds);
    phase_sharded(&mut campaign, &sup, &golds);
    phase_resume(&mut campaign, &golds);
    ChaosReport {
        seed: opts.seed,
        quick: opts.quick,
        rows: campaign.rows,
        counters: campaign.counters,
        failures: campaign.failures,
    }
}

/// Phase 1: every (quick: a subset of the) registry method runs clean
/// under supervision and must reproduce its golden digest.
fn phase_golden(c: &mut Campaign, sup: &Supervisor, golds: &[(&'static str, &'static str)]) {
    let take = if c.opts.quick {
        4.min(golds.len())
    } else {
        golds.len()
    };
    let jobs: Vec<JobEnvelope> = golds[..take].iter().map(|(m, _)| c.envelope(m)).collect();
    let image = Arc::clone(&c.image);
    let report = sup.run_with(jobs, |env, _attempt| golden_run(env, &image));
    for (rec, (method, want)) in report.records.iter().zip(&golds[..take]) {
        match rec.value() {
            Some(got) if got == want => {}
            Some(_) => c.fail(format!(
                "golden: digest mismatch for {method} under supervision"
            )),
            None => c.fail(format!("golden: {method} did not complete")),
        }
        if rec.attempts != 1 {
            c.fail(format!(
                "golden: {method} took {} attempts on a fault-free run",
                rec.attempts
            ));
        }
    }
    c.absorb("golden", &report);
}

/// Phase 2: the fault scenarios. Each runs a one-job batch through the
/// same supervisor (so quarantine state persists) with a distinct
/// method per scenario (distinct quarantine keys).
fn phase_faults(c: &mut Campaign, sup: &Supervisor, golds: &[(&'static str, &'static str)]) {
    if golds.len() < 6 {
        c.fail("faults: fewer than 6 golden methods; cannot assign scenarios".to_owned());
        return;
    }
    let image = Arc::clone(&c.image);

    // Scenario: transient worker panic — the instruction stream panics
    // mid-warmup on the first attempt only; the retry must complete and
    // still match the golden digest.
    let env = c.envelope(golds[0].0);
    let img = Arc::clone(&image);
    let report = sup.run_with(vec![env], |env, attempt| {
        if attempt.index == 0 {
            let cfg = chaos_config(&env.method)?;
            let mut sim = Simulator::try_new(cfg, Arc::clone(&img))?;
            sim.attach_control(attempt.control.clone());
            let walker = Walker::new(Arc::clone(&img), 5);
            let mut faulty = FaultyStream::new(walker, StreamFault::PanicAfter(PANIC_AT));
            let _ = sim.run(&mut faulty);
            return Err(run_err(env, "injected stream panic did not fire".into()));
        }
        golden_run(env, &img)
    });
    c.expect_status("transient-panic", &report, JobStatus::Retried);
    if let Some(got) = report.records.first().and_then(|r| r.value()) {
        if got != golds[0].1 {
            c.fail("transient-panic: post-retry digest diverged from golden".to_owned());
        }
    }
    c.absorb("faults", &report);

    // Scenario: permanent worker panic — every attempt panics; the job
    // must quarantine after max_attempts.
    let env = c.envelope(golds[1].0);
    let img = Arc::clone(&image);
    let report = sup.run_with(vec![env.clone()], |env, attempt| {
        let cfg = chaos_config(&env.method)?;
        let mut sim = Simulator::try_new(cfg, Arc::clone(&img))?;
        sim.attach_control(attempt.control.clone());
        let walker = Walker::new(Arc::clone(&img), 5);
        let mut faulty = FaultyStream::new(walker, StreamFault::PanicAfter(PANIC_AT));
        let _ = sim.run(&mut faulty);
        Err(run_err(env, "injected stream panic did not fire".into()))
    });
    c.expect_status("permanent-panic", &report, JobStatus::Quarantined);
    c.absorb("faults", &report);

    // Scenario: quarantine skip — resubmitting the quarantined config
    // must be skipped (0 attempts) even with a healthy runner.
    let img = Arc::clone(&image);
    let report = sup.run_with(vec![env], |env, _| golden_run(env, &img));
    c.expect_status("quarantine-skip", &report, JobStatus::Quarantined);
    if let Some(rec) = report.records.first() {
        if rec.attempts != 0 {
            c.fail(format!(
                "quarantine-skip: quarantined config re-ran ({} attempts)",
                rec.attempts
            ));
        }
    }
    c.absorb("faults", &report);

    // Scenario: transient deadline overrun — the first attempt runs
    // under an injected tiny instruction budget and times out; the
    // retry runs clean and must match its golden.
    let env = c.envelope(golds[2].0);
    let img = Arc::clone(&image);
    let report = sup.run_with(vec![env], |env, attempt| {
        if attempt.index == 0 {
            let cfg = chaos_config(&env.method)?;
            let mut sim = Simulator::try_new(cfg, Arc::clone(&img))?;
            sim.attach_control(RunControl::with_budget(TINY_BUDGET));
            let mut walker = Walker::new(Arc::clone(&img), 5);
            let _ = sim.run(&mut walker);
            if sim.interrupted() {
                return Err(DcfbError::Timeout {
                    workload: env.workload.clone(),
                    method: env.method.clone(),
                    deadline: Deadline::Instrs(TINY_BUDGET).describe(),
                });
            }
            return Err(run_err(env, "injected budget did not interrupt".into()));
        }
        golden_run(env, &img)
    });
    c.expect_status("transient-timeout", &report, JobStatus::Retried);
    if let Some(rec) = report.records.first() {
        if rec.timeouts != 1 {
            c.fail(format!(
                "transient-timeout: expected 1 timeout, saw {}",
                rec.timeouts
            ));
        }
    }
    c.absorb("faults", &report);

    // Scenario: permanent deadline overrun — the envelope itself
    // carries a budget no attempt can meet; every attempt times out and
    // the job quarantines.
    let mut env = c.envelope(golds[3].0);
    env.deadline = Deadline::Instrs(TINY_BUDGET);
    let img = Arc::clone(&image);
    let report = sup.run_with(vec![env], |env, attempt| {
        let cfg = chaos_config(&env.method)?;
        let mut sim = Simulator::try_new(cfg, Arc::clone(&img))?;
        sim.attach_control(attempt.control.clone());
        let mut walker = Walker::new(Arc::clone(&img), 5);
        let _ = sim.run(&mut walker);
        if sim.interrupted() {
            return Err(DcfbError::Timeout {
                workload: env.workload.clone(),
                method: env.method.clone(),
                deadline: env.deadline.describe(),
            });
        }
        Err(run_err(env, "deadline did not interrupt".into()))
    });
    c.expect_status("permanent-timeout", &report, JobStatus::Quarantined);
    if let Some(rec) = report.records.first() {
        if rec.timeouts != rec.attempts {
            c.fail(format!(
                "permanent-timeout: {} attempts but only {} timeouts",
                rec.attempts, rec.timeouts
            ));
        }
    }
    c.absorb("faults", &report);

    // Record one binary trace from the fixture for the reader-fault
    // scenarios.
    let mut bytes = Vec::new();
    let mut walker = Walker::new(Arc::clone(&image), 5);
    let recorded = match write_binary_v2(
        &mut walker,
        &mut bytes,
        TRACE_RECORDS,
        Some(IsaMode::Fixed4),
        dcfb_trace::file::DEFAULT_CHUNK_RECORDS,
    ) {
        Ok(n) => n,
        Err(e) => {
            c.fail(format!("faults: cannot record fixture trace: {e}"));
            return;
        }
    };
    // Seeded truncation offset, always inside the payload's middle
    // third so both readers see a damaged tail.
    let cut =
        bytes.len() as u64 * 2 / 3 + splitmix64(c.opts.seed) % (bytes.len() as u64 / 6).max(1);

    // Scenario: corrupted trace under the strict reader — every attempt
    // hits the truncation and errors; the job quarantines.
    let env = c.envelope(golds[4].0);
    let data = bytes.clone();
    let report = sup.run_with(vec![env], |env, _attempt| {
        let reader = FaultyReader::new(Cursor::new(data.clone())).truncate_at(cut);
        match dcfb_trace::read_binary_checked(reader, ReadMode::Strict) {
            Ok(_) => Err(run_err(
                env,
                "strict read of truncated trace succeeded".into(),
            )),
            Err(e) => Err(e),
        }
    });
    c.expect_status("strict-truncated-trace", &report, JobStatus::Quarantined);
    c.absorb("faults", &report);

    // Scenario: the same damaged trace under the lenient reader — the
    // verified prefix is salvaged and replayed through the real
    // simulator on the first attempt.
    let env = c.envelope(golds[5].0);
    let data = bytes;
    let report = sup.run_with(vec![env], |env, attempt| {
        let reader = FaultyReader::new(Cursor::new(data.clone())).truncate_at(cut);
        let (trace, rr) = dcfb_trace::read_binary_checked(reader, ReadMode::Lenient)?;
        if rr.salvage.is_none() {
            return Err(run_err(env, "lenient read saw no damage".into()));
        }
        let first = trace
            .instrs()
            .first()
            .copied()
            .ok_or_else(|| run_err(env, "salvaged trace is empty".into()))?;
        let cfg = chaos_config(&env.method)?;
        let code = Arc::new(RecordedCode::from_trace(trace.instrs()));
        let mut sim = Simulator::try_with_code(cfg, code, first.pc, env.workload.clone())?;
        sim.attach_control(attempt.control.clone());
        let mut replayer = trace.replay();
        let rep = sim.run(&mut replayer);
        Ok(format!(
            "salvaged {}/{} records, {}",
            rr.records,
            recorded,
            rep.digest()
        ))
    });
    c.expect_status("lenient-salvage-replay", &report, JobStatus::Completed);
    c.absorb("faults", &report);
}

/// Phase: sharded fault isolation. The fixture run is sliced into
/// three time shards and each shard is a separately supervised job.
/// One shard's instruction stream panics mid-warmup on its first
/// attempt; supervision must retry *that shard only* (the others
/// complete in one attempt), and the report stitched from the
/// supervised shards must be byte-identical to a clean sharded run of
/// the same plan.
fn phase_sharded(c: &mut Campaign, sup: &Supervisor, golds: &[(&'static str, &'static str)]) {
    const SHARDS: usize = 3;
    const FAULT_SHARD: usize = 1;
    if golds.len() < 7 {
        c.fail("sharded: fewer than 7 golden methods; cannot assign a scenario".to_owned());
        return;
    }
    let method = golds[6].0;
    let cfg = match chaos_config(method) {
        Ok(cfg) => cfg,
        Err(e) => {
            c.fail(format!("sharded: bad config for {method}: {e}"));
            return;
        }
    };
    let image = Arc::clone(&c.image);
    // The clean reference: the same plan executed by the sharded
    // executor with no faults. Full-warmup overlap, the same operating
    // point the conformance tolerance tier pins.
    let opts = ShardOptions {
        shards: SHARDS,
        warmup_overlap: Some(cfg.warmup_instrs),
        jobs: 1,
    };
    let reference = match run_sharded(&cfg, &image, FIXTURE_TRACE_SEED, &opts) {
        Ok(run) => run,
        Err(e) => {
            c.fail(format!("sharded: clean reference run failed: {e}"));
            return;
        }
    };
    let plan = plan_shards(
        cfg.warmup_instrs,
        cfg.measure_instrs,
        SHARDS,
        opts.overlap_for(cfg.warmup_instrs),
    );
    let trace = record_trace(&image, FIXTURE_TRACE_SEED, plan.trace_instrs());
    // Stitched from the supervised shard jobs as each one completes.
    let stitched: Mutex<Vec<Option<SimReport>>> = Mutex::new(vec![None; plan.shards.len()]);
    for (i, spec) in plan.shards.iter().enumerate() {
        let report = sup.run_with(vec![c.envelope(method)], |env, attempt| {
            let mut stream = shard_stream(&trace, spec);
            if i == FAULT_SHARD && attempt.index == 0 {
                // This shard's stream panics mid-warmup, first attempt
                // only; the other shards never see a fault.
                let mut faulty =
                    FaultyStream::new(stream, StreamFault::PanicAfter(spec.warmup / 2));
                let _ = run_shard(&cfg, &image, spec, &mut faulty);
                return Err(run_err(env, "injected shard panic did not fire".into()));
            }
            let rep = run_shard(&cfg, &image, spec, &mut stream)?;
            let digest = rep.digest();
            if let Ok(mut slots) = stitched.lock() {
                slots[i] = Some(rep);
            }
            Ok(format!("shard {i}: {digest}"))
        });
        let want = if i == FAULT_SHARD {
            JobStatus::Retried
        } else {
            JobStatus::Completed
        };
        c.expect_status(&format!("sharded-shard-{i}"), &report, want);
        c.absorb("sharded", &report);
    }
    let reports: Vec<SimReport> = match stitched.into_inner() {
        Ok(slots) => slots.into_iter().flatten().collect(),
        Err(_) => Vec::new(),
    };
    if reports.len() != plan.shards.len() {
        c.fail(format!(
            "sharded: only {}/{} supervised shards reported",
            reports.len(),
            plan.shards.len()
        ));
        return;
    }
    match merge_reports(&reports) {
        Some(merged) if merged.digest() == reference.merged.digest() => {}
        Some(_) => c.fail(format!(
            "sharded: merged digest after the shard-{FAULT_SHARD} retry diverged \
             from the clean sharded run for {method}"
        )),
        None => c.fail("sharded: nothing to merge".to_owned()),
    }
}

/// Phase 3: checkpoint torn mid-write, then resumed — the salvaged
/// prefix plus regenerated tail must be byte-identical to the
/// uninterrupted checkpoint.
fn phase_resume(c: &mut Campaign, golds: &[(&'static str, &'static str)]) {
    let take = if c.opts.quick {
        2.min(golds.len())
    } else {
        4.min(golds.len())
    };
    if take < 2 {
        c.fail("resume: not enough goldens for the checkpoint scenario".to_owned());
        return;
    }
    let mut reference = Checkpoint::new();
    for (m, d) in &golds[..take] {
        reference.put(m, d);
    }
    let json = reference.to_json();
    // Seeded tear inside the final entry's value.
    let cut = json.len() - 2 - (splitmix64(c.opts.seed ^ 0xC4A0) % 8) as usize;
    let dir = std::env::temp_dir().join(format!(
        "dcfb-chaos-{}-{:x}",
        std::process::id(),
        c.opts.seed
    ));
    let outcome = (|| -> Result<String, DcfbError> {
        std::fs::create_dir_all(&dir).map_err(|e| DcfbError::io(dir.display().to_string(), &e))?;
        let path = dir.join("checkpoint.json");
        std::fs::write(&path, &json[..cut])
            .map_err(|e| DcfbError::io(path.display().to_string(), &e))?;
        let (mut salvaged, reason) = Checkpoint::load_lenient(&path)?;
        let Some(reason) = reason else {
            return Err(DcfbError::Config(
                "torn checkpoint loaded without a salvage reason".to_owned(),
            ));
        };
        let kept = salvaged.len();
        // Resume: regenerate exactly the missing figures through the
        // real fixture runner, in original order.
        let mut regenerated = 0usize;
        for (m, _) in &golds[..take] {
            if salvaged.get(m).is_none() {
                let digest = fixture_digest(&c.image, m, false)
                    .map_err(|e| DcfbError::Config(format!("resume rerun of {m}: {e}")))?;
                salvaged.put(m, &digest);
                regenerated += 1;
            }
        }
        if salvaged.to_json() != json {
            return Err(DcfbError::Config(
                "resumed checkpoint is not byte-identical to the reference".to_owned(),
            ));
        }
        Ok(format!(
            "tore at byte {cut}/{}: kept {kept}, regenerated {regenerated}, byte-identical ({reason})",
            json.len()
        ))
    })();
    let _ = std::fs::remove_dir_all(&dir);
    match outcome {
        Ok(detail) => c.rows.push(ChaosRow {
            phase: "resume",
            job: format!("checkpoint×{take}"),
            status: "completed",
            attempts: 1,
            timeouts: 0,
            detail,
        }),
        Err(e) => {
            c.fail(format!("resume: {e}"));
            c.rows.push(ChaosRow {
                phase: "resume",
                job: format!("checkpoint×{take}"),
                status: "quarantined",
                attempts: 1,
                timeouts: 0,
                detail: e.to_string(),
            });
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_passes_and_is_deterministic() {
        let opts = ChaosOptions {
            seed: 42,
            quick: true,
            jobs: 2,
        };
        let a = run_chaos(&opts);
        assert!(a.passed(), "failures: {:?}", a.failures);
        // Counts sum to submitted.
        let total = a.count("completed") + a.count("retried") + a.count("quarantined");
        assert_eq!(total, a.rows.len());
        // Expected scenario mix: transient scenarios plus the faulted
        // shard retried, permanent plus skip plus strict-read
        // quarantined.
        assert_eq!(a.count("retried"), 3);
        assert_eq!(a.count("quarantined"), 4);
        assert_eq!(a.counters.get(Ctr::JobQuarantines), 4);
        assert!(a.counters.get(Ctr::JobTimeouts) >= 4);
        // Same seed, same campaign.
        let b = run_chaos(&opts);
        let fmt = |r: &ChaosReport| {
            r.rows
                .iter()
                .map(|x| {
                    format!(
                        "{}|{}|{}|{}|{}",
                        x.phase, x.job, x.status, x.attempts, x.timeouts
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(fmt(&a), fmt(&b));
        let rendered = a.render();
        assert!(rendered.contains("all invariants held"), "{rendered}");
    }

    #[test]
    fn different_seed_still_passes() {
        let report = run_chaos(&ChaosOptions {
            seed: 7,
            quick: true,
            jobs: 1,
        });
        assert!(report.passed(), "failures: {:?}", report.failures);
    }
}
