//! A tiny result-table type rendered as markdown.

use std::fmt;

/// One regenerated table or figure, as rows of strings.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id ("Fig. 16", "Table I", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Paper-vs-measured commentary appended under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Formats a ratio as a percentage with one decimal.
    pub fn pct(x: f64) -> String {
        format!("{:.1}%", x * 100.0)
    }

    /// Formats a multiplier with two decimals.
    pub fn x(v: f64) -> String {
        format!("{v:.2}x")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {} — {}\n", self.id, self.title)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        for n in &self.notes {
            writeln!(f, "\n> {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Fig. X", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("shape holds");
        let s = t.to_string();
        assert!(s.contains("### Fig. X — demo"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("> shape holds"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("f", "t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(Table::pct(0.613), "61.3%");
        assert_eq!(Table::x(7.2), "7.20x");
    }
}
