//! Parallel-sweep behavior of the `all_experiments` batch binary:
//!
//! * crash isolation, retry, failure summary, and checkpoint/resume
//!   must behave identically under `DCFB_JOBS=4` and `DCFB_JOBS=1`;
//! * the figure document (stdout) and the checkpoint file must be
//!   byte-identical for every job count;
//! * the `bench-sweep` JSON report round-trips and validates.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcfb-par-sweep-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_cmd(checkpoint: &Path, jobs: &str) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_all_experiments"));
    cmd.env("DCFB_WARMUP", "400")
        .env("DCFB_MEASURE", "800")
        .env("DCFB_WORKLOADS", "2")
        .env("DCFB_JOBS", jobs)
        .env("DCFB_CHECKPOINT", checkpoint)
        .env_remove("DCFB_RESUME")
        .env_remove("DCFB_FAIL_FIGURE");
    cmd
}

/// An injected figure panic under a 4-worker sweep must produce the
/// same failure summary, checkpoint contents, and resume behavior as
/// the sequential path (`batch_robustness.rs` covers `DCFB_JOBS=1`
/// implicitly — here the panic crosses the worker pool's scope join).
#[test]
fn crash_isolation_is_jobs_independent() {
    let dir = temp_dir("faults");
    let par_ckpt = dir.join("par.json");
    let seq_ckpt = dir.join("seq.json");

    let run_with_fault = |ckpt: &Path, jobs: &str| {
        tiny_cmd(ckpt, jobs)
            .env("DCFB_FAIL_FIGURE", "fig13")
            .output()
            .expect("spawn all_experiments")
    };
    let par = run_with_fault(&par_ckpt, "4");
    let seq = run_with_fault(&seq_ckpt, "1");

    for (label, out) in [("jobs=4", &par), ("jobs=1", &seq)] {
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(4), "{label}\nstderr: {stderr}");
        assert!(stdout.contains("## Failure summary"), "{label}: {stdout}");
        assert!(stdout.contains("fig13"), "{label}: {stdout}");
        assert!(stderr.contains("[fig13] FAILED"), "{label}: {stderr}");
        assert!(stderr.contains("[fig16] regenerated"), "{label}: {stderr}");
    }
    // Identical documents and identical checkpoints: the parallel
    // executor merges in workload order, so nothing about the failure
    // path may depend on the job count.
    assert_eq!(
        par.stdout, seq.stdout,
        "figure document diverged across job counts"
    );
    let par_saved = std::fs::read_to_string(&par_ckpt).unwrap();
    let seq_saved = std::fs::read_to_string(&seq_ckpt).unwrap();
    assert_eq!(
        par_saved, seq_saved,
        "checkpoint diverged across job counts"
    );
    assert!(par_saved.contains("\"fig16\""));
    assert!(!par_saved.contains("\"fig13\""));

    // Resume under 4 workers: checkpointed figures skip, the failed
    // one regenerates, and the batch exits clean.
    let out = tiny_cmd(&par_ckpt, "4")
        .env("DCFB_RESUME", "1")
        .output()
        .expect("spawn all_experiments (resume)");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("[fig16] skipped (checkpoint)"), "{stderr}");
    assert!(stderr.contains("[fig13] regenerated"), "{stderr}");
    assert!(!stdout.contains("## Failure summary"), "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The whole tiny batch must emit byte-identical stdout and checkpoint
/// files at `DCFB_JOBS=1` and `DCFB_JOBS=8`.
#[test]
fn figure_output_is_byte_identical_across_job_counts() {
    let dir = temp_dir("determinism");
    let one_ckpt = dir.join("jobs1.json");
    let eight_ckpt = dir.join("jobs8.json");

    let one = tiny_cmd(&one_ckpt, "1").output().expect("spawn jobs=1");
    let eight = tiny_cmd(&eight_ckpt, "8").output().expect("spawn jobs=8");

    assert_eq!(one.status.code(), Some(0));
    assert_eq!(eight.status.code(), Some(0));
    assert!(!one.stdout.is_empty());
    assert_eq!(
        one.stdout, eight.stdout,
        "figure document must not depend on DCFB_JOBS"
    );
    assert_eq!(
        std::fs::read_to_string(&one_ckpt).unwrap(),
        std::fs::read_to_string(&eight_ckpt).unwrap(),
        "checkpoint must not depend on DCFB_JOBS"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

/// In-process bench-sweep at smoke scale: the report validates, its
/// JSON round-trips, and the parallel pass reproduced the sequential
/// results exactly.
#[test]
fn bench_sweep_report_is_valid_and_deterministic() {
    // Scale comes straight from SweepOptions, not the env, so this
    // test is independent of DCFB_* in the surrounding environment.
    let opts = dcfb_bench::SweepOptions {
        warmup: 400,
        measure: 800,
        jobs: 2,
        methods: vec!["Baseline".to_owned(), "N4L".to_owned()],
    };
    // The served-mix numbers come from the serve crate in production;
    // a plausible stand-in keeps this test below the serve layer.
    let serve = dcfb_bench::ServeMixMeasurement {
        submit_jobs: 8,
        cache_hit_frac: 0.5,
        jobs_per_sec: 4.0,
    };
    let report = dcfb_bench::run_bench_sweep(&opts, &serve).expect("bench sweep runs");
    report.validate().expect("smoke report validates");
    assert!(report.deterministic, "parallel pass diverged: {report:?}");
    assert_eq!(report.methods, 2);
    assert_eq!(report.runs, report.workloads * report.methods);

    let json = report.to_json();
    let back = dcfb_bench::BenchSweepReport::from_json(&json).expect("round-trip");
    assert_eq!(back, report);
    back.validate().expect("round-tripped report validates");
}
