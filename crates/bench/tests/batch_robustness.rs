//! End-to-end crash isolation + resume for the `all_experiments`
//! batch binary: a run with an injected figure panic must complete,
//! write a failure summary, and exit with the run-failure code; a
//! second invocation with `DCFB_RESUME=1` must skip every checkpointed
//! figure and regenerate only the failed one.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::PathBuf;
use std::process::Command;

fn scaled_cmd(checkpoint: &std::path::Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_all_experiments"));
    cmd.env("DCFB_WARMUP", "2000")
        .env("DCFB_MEASURE", "3000")
        .env("DCFB_WORKLOADS", "1")
        .env("DCFB_CHECKPOINT", checkpoint)
        .env_remove("DCFB_RESUME")
        .env_remove("DCFB_FAIL_FIGURE");
    cmd
}

#[test]
fn injected_figure_panic_is_summarized_and_resumable() {
    let dir = std::env::temp_dir().join(format!("dcfb-batch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint: PathBuf = dir.join("checkpoint.json");

    // First run: fig13 dies. The batch must still complete every other
    // figure, print a failure summary, and exit 4.
    let out = scaled_cmd(&checkpoint)
        .env("DCFB_FAIL_FIGURE", "fig13")
        .output()
        .expect("spawn all_experiments");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(4),
        "expected run-failure exit code\nstderr: {stderr}"
    );
    assert!(stdout.contains("## Failure summary"), "{stdout}");
    assert!(stdout.contains("fig13"), "{stdout}");
    assert!(stdout.contains("injected fault"), "{stdout}");
    // The batch kept going past the failure.
    assert!(stderr.contains("[fig13] FAILED"), "{stderr}");
    assert!(stderr.contains("[fig16] regenerated"), "{stderr}");
    // Completed figures were checkpointed; the failed one was not.
    let ckpt = std::fs::read_to_string(&checkpoint).unwrap();
    assert!(ckpt.contains("\"fig16\""), "{ckpt}");
    assert!(!ckpt.contains("\"fig13\""), "{ckpt}");

    // Second run: resume. Checkpointed figures are skipped, only fig13
    // is regenerated, and the batch succeeds.
    let out = scaled_cmd(&checkpoint)
        .env("DCFB_RESUME", "1")
        .output()
        .expect("spawn all_experiments (resume)");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("resuming from"), "{stderr}");
    assert!(stderr.contains("[fig16] skipped (checkpoint)"), "{stderr}");
    assert!(stderr.contains("[fig13] regenerated"), "{stderr}");
    assert!(!stdout.contains("## Failure summary"), "{stdout}");
    // The resumed document still contains every figure's table.
    assert!(
        stdout.contains("Fig. 16") || stdout.contains("fig16") || stdout.contains("Speedup"),
        "resumed document looks incomplete: {stdout}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_mid_sweep_then_resume_is_byte_identical() {
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("dcfb-batch-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Reference: one uninterrupted parallel batch.
    let reference = dir.join("reference.json");
    let out = scaled_cmd(&reference)
        .env("DCFB_JOBS", "2")
        .output()
        .expect("spawn all_experiments (reference)");
    assert_eq!(out.status.code(), Some(0));
    let want = out.stdout;

    // Victim: same batch, SIGKILLed as soon as the first figure lands
    // in the checkpoint (possibly mid-write of a later save).
    let checkpoint = dir.join("killed.json");
    let mut child = scaled_cmd(&checkpoint)
        .env("DCFB_JOBS", "2")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn all_experiments (victim)");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if std::fs::read_to_string(&checkpoint)
            .map(|s| s.contains("\"fig"))
            .unwrap_or(false)
        {
            break;
        }
        if child.try_wait().unwrap().is_some() || Instant::now() > deadline {
            break; // finished (or hung) before we could kill — resume still must work
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    child.kill().ok();
    child.wait().unwrap();

    // Resume: the merged document must be byte-identical to the
    // uninterrupted reference.
    let out = scaled_cmd(&checkpoint)
        .env("DCFB_JOBS", "2")
        .env("DCFB_RESUME", "1")
        .output()
        .expect("spawn all_experiments (resume)");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("resuming from"), "{stderr}");
    assert_eq!(
        out.stdout, want,
        "resumed document differs from the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_checkpoint_is_salvaged_on_resume() {
    let dir = std::env::temp_dir().join(format!("dcfb-batch-salvage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint: PathBuf = dir.join("checkpoint.json");

    // Seed a complete checkpoint, then tear it mid-file as a kill
    // during a checkpoint write would.
    let out = scaled_cmd(&checkpoint)
        .output()
        .expect("spawn all_experiments (seed)");
    assert_eq!(out.status.code(), Some(0));
    let full = std::fs::read_to_string(&checkpoint).unwrap();
    // Cut inside the last figure's value so at least one entry is
    // damaged but earlier ones stay intact.
    let last_key = full.rfind("\"fig").unwrap();
    std::fs::write(&checkpoint, &full[..last_key + 20]).unwrap();

    // Resume: the valid prefix must be salvaged (skipped figures), the
    // torn tail regenerated, and the batch must succeed with a complete
    // document.
    let out = scaled_cmd(&checkpoint)
        .env("DCFB_RESUME", "1")
        .output()
        .expect("spawn all_experiments (salvage resume)");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("warning: checkpoint damaged"), "{stderr}");
    assert!(stderr.contains("salvaged"), "{stderr}");
    assert!(stderr.contains("skipped (checkpoint)"), "{stderr}");
    assert!(stderr.contains("regenerated"), "{stderr}");
    assert!(!stdout.contains("## Failure summary"), "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}
