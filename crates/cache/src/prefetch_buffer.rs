//! A small fully-associative prefetch buffer.
//!
//! The paper uses such buffers in two places: the NXL side-effect study
//! holds prefetched blocks in a 64-entry buffer next to the L1i "to
//! immune it from cache pollution" (§IV), and Shotgun keeps a
//! fully-associative 64-entry L1i prefetch buffer (§VI-D). SN4L and Dis
//! are accurate enough to prefetch directly into the cache and need no
//! buffer — making that contrast measurable is the point of this type.

use dcfb_telemetry::PfSource;
use dcfb_trace::Block;

/// A fully-associative, LRU-replaced buffer of prefetched blocks.
/// Each entry remembers which prefetcher filled it, so evictions and
/// hits can be attributed for timeliness classification.
#[derive(Clone, Debug)]
pub struct PrefetchBuffer {
    entries: Vec<(Block, u64, PfSource)>, // (block, lru stamp, filler)
    capacity: usize,
    clock: u64,
    hits: u64,
    lookups: u64,
    inserted: u64,
    replaced_unused: u64,
}

impl PrefetchBuffer {
    /// Creates an empty buffer with room for `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer capacity must be non-zero");
        PrefetchBuffer {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            hits: 0,
            lookups: 0,
            inserted: 0,
            replaced_unused: 0,
        }
    }

    /// Inserts a prefetched block filled by `source`, evicting the
    /// LRU entry if full. Returns the evicted `(block, filler)`, if
    /// any. Re-inserting a resident block refreshes its LRU position.
    pub fn insert(&mut self, block: Block, source: PfSource) -> Option<(Block, PfSource)> {
        self.clock += 1;
        self.inserted += 1;
        if let Some(e) = self.entries.iter_mut().find(|(b, _, _)| *b == block) {
            e.1 = self.clock;
            return None;
        }
        let mut evicted = None;
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp, _))| *stamp)
                .expect("buffer non-empty");
            let (b, _, s) = self.entries.swap_remove(idx);
            evicted = Some((b, s));
            self.replaced_unused += 1;
        }
        self.entries.push((block, self.clock, source));
        evicted
    }

    /// Demand lookup: on a hit the block is *removed* (it moves into the
    /// cache proper) and its filler is returned.
    pub fn take(&mut self, block: Block) -> Option<PfSource> {
        self.lookups += 1;
        if let Some(idx) = self.entries.iter().position(|(b, _, _)| *b == block) {
            let (_, _, source) = self.entries.swap_remove(idx);
            self.hits += 1;
            Some(source)
        } else {
            None
        }
    }

    /// Non-destructive residency check.
    pub fn contains(&self, block: Block) -> bool {
        self.entries.iter().any(|(b, _, _)| *b == block)
    }

    /// Number of resident blocks.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// `(lookups, hits, inserted, evicted_unused)` counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.lookups, self.hits, self.inserted, self.replaced_unused)
    }

    /// The resident blocks in LRU-stamp order (oldest first). Exposed
    /// for conformance checks that compare full buffer state against a
    /// reference model.
    pub fn resident_blocks(&self) -> Vec<Block> {
        let mut stamped: Vec<(u64, Block)> = self
            .entries
            .iter()
            .map(|&(b, stamp, _)| (stamp, b))
            .collect();
        stamped.sort_unstable();
        stamped.into_iter().map(|(_, b)| b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: PfSource = PfSource::NextLine;

    #[test]
    fn insert_take_roundtrip() {
        let mut pb = PrefetchBuffer::new(4);
        assert!(pb.insert(10, S).is_none());
        assert!(pb.contains(10));
        assert_eq!(pb.take(10), Some(S));
        assert!(!pb.contains(10));
        assert!(pb.take(10).is_none());
        let (lookups, hits, inserted, _) = pb.counters();
        assert_eq!((lookups, hits, inserted), (2, 1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut pb = PrefetchBuffer::new(2);
        pb.insert(1, S);
        pb.insert(2, S);
        pb.insert(1, S); // refresh 1; LRU is now 2
        let evicted = pb.insert(3, S);
        assert_eq!(evicted, Some((2, S)));
        assert!(pb.contains(1));
        assert!(pb.contains(3));
    }

    #[test]
    fn occupancy_bounded() {
        let mut pb = PrefetchBuffer::new(3);
        for b in 0..10 {
            pb.insert(b, S);
            assert!(pb.occupancy() <= 3);
        }
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut pb = PrefetchBuffer::new(4);
        pb.insert(5, S);
        pb.insert(5, S);
        assert_eq!(pb.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = PrefetchBuffer::new(0);
    }
}
