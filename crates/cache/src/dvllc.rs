//! The dynamically-virtualized LLC (DV-LLC) of §V-D.
//!
//! DV-LLC stores branch footprints (BFs) for instruction blocks *inside*
//! the LLC itself, without dedicating static storage: in any set that
//! holds at least one instruction block, the LRU way switches from
//! *block-holder* to *BF-holder* mode and stores the BFs of the set's
//! instruction blocks. When the last instruction block leaves a set, the
//! way reverts to holding data.
//!
//! The paper sizes the BF-holder at up to 21 direct-mapped BFs (one per
//! way, 3 B each in a 64 B line) or, with tags for a fully-associative
//! organization, up to 10 BFs — more than the ≤ 4 BFs per set that
//! Fig. 9 shows are needed.

use crate::cache::LineFlags;
use crate::footprint::BranchFootprint;
use dcfb_trace::Block;

/// DV-LLC statistics, including the mode-switching behaviour and the
/// data-capacity cost that §VII-J reports (≤ 0.1 % data hit-ratio drop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DvLlcStats {
    /// Demand accesses for instruction blocks.
    pub instr_accesses: u64,
    /// Demand hits for instruction blocks.
    pub instr_hits: u64,
    /// Demand accesses for data blocks.
    pub data_accesses: u64,
    /// Demand hits for data blocks.
    pub data_hits: u64,
    /// BF lookups that found a footprint.
    pub bf_hits: u64,
    /// BF lookups that missed.
    pub bf_misses: u64,
    /// Footprints inserted.
    pub bf_inserts: u64,
    /// Footprints dropped because the BF-holder was full.
    pub bf_capacity_drops: u64,
    /// Sets that switched into BF-holder mode.
    pub switches_to_bf: u64,
    /// Sets that reverted to block-holder mode.
    pub switches_to_block: u64,
    /// Valid data blocks evicted to free the LRU way for BFs.
    pub data_evicted_for_bf: u64,
}

impl DvLlcStats {
    /// Instruction hit ratio in `[0, 1]`.
    pub fn instr_hit_ratio(&self) -> f64 {
        if self.instr_accesses == 0 {
            0.0
        } else {
            self.instr_hits as f64 / self.instr_accesses as f64
        }
    }

    /// Data hit ratio in `[0, 1]`.
    pub fn data_hit_ratio(&self) -> f64 {
        if self.data_accesses == 0 {
            0.0
        } else {
            self.data_hits as f64 / self.data_accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    stamp: u64,
    flags: LineFlags,
}

#[derive(Clone, Debug, Default)]
struct BfHolder {
    active: bool,
    entries: Vec<(u64, BranchFootprint, u64)>, // (tag, bf, stamp)
}

/// A set-associative LLC whose LRU way dynamically virtualizes branch
/// footprints (see module docs).
#[derive(Clone, Debug)]
pub struct DvLlc {
    sets: usize,
    ways: usize,
    bf_capacity: usize,
    lines: Vec<Line>,
    holders: Vec<BfHolder>,
    clock: u64,
    stats: DvLlcStats,
    enabled: bool,
}

impl DvLlc {
    /// Creates a DV-LLC with `sets` × `ways` lines and room for
    /// `bf_capacity` footprints in each BF-holder way.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, `ways < 2`, or
    /// `bf_capacity` is zero.
    pub fn new(sets: usize, ways: usize, bf_capacity: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways >= 2, "DV-LLC needs at least 2 ways");
        assert!(bf_capacity > 0, "bf_capacity must be non-zero");
        DvLlc {
            sets,
            ways,
            bf_capacity,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                    flags: LineFlags::default(),
                };
                sets * ways
            ],
            holders: vec![BfHolder::default(); sets],
            clock: 0,
            stats: DvLlcStats::default(),
            enabled: true,
        }
    }

    /// Creates the paper's configuration: one core-visible LLC slice
    /// (2 MiB, 16-way), fully-associative BF-holder with 10 entries.
    pub fn paper_slice() -> Self {
        DvLlc::new(2 * 1024 * 1024 / 64 / 16, 16, 10)
    }

    /// Disables virtualization: behaves as a conventional LLC (all ways
    /// hold blocks, no BFs stored). Used for the §VII-J on/off study.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether BF virtualization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DvLlcStats {
        self.stats
    }

    /// Resets statistics (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = DvLlcStats::default();
    }

    #[inline]
    fn set_index(&self, block: Block) -> usize {
        (block as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag(&self, block: Block) -> u64 {
        block >> self.sets.trailing_zeros()
    }

    fn block_from(&self, tag: u64, set: usize) -> Block {
        (tag << self.sets.trailing_zeros()) | set as u64
    }

    /// Number of ways currently usable for blocks in `set`.
    fn usable_ways(&self, set: usize) -> usize {
        if self.holders[set].active {
            self.ways - 1
        } else {
            self.ways
        }
    }

    fn find(&self, block: Block) -> Option<usize> {
        let set = self.set_index(block);
        let tag = self.tag(block);
        let base = set * self.ways;
        (base..base + self.usable_ways(set))
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Demand access to `block`; `is_instruction` selects which hit-ratio
    /// bucket the access lands in. Returns `true` on hit.
    pub fn demand_access(&mut self, block: Block, is_instruction: bool) -> bool {
        self.clock += 1;
        let hit = if let Some(i) = self.find(block) {
            self.lines[i].stamp = self.clock;
            self.lines[i].flags.demanded = true;
            true
        } else {
            false
        };
        if is_instruction {
            self.stats.instr_accesses += 1;
            self.stats.instr_hits += u64::from(hit);
        } else {
            self.stats.data_accesses += 1;
            self.stats.data_hits += u64::from(hit);
        }
        hit
    }

    /// Residency check without LRU update or statistics.
    pub fn contains(&self, block: Block) -> bool {
        self.find(block).is_some()
    }

    /// Fills `block`; activates BF mode when the first instruction block
    /// enters a set (evicting the LRU data block if needed). Returns the
    /// evicted block, if any.
    pub fn fill(&mut self, block: Block, flags: LineFlags) -> Option<Block> {
        self.clock += 1;
        let set = self.set_index(block);
        if let Some(i) = self.find(block) {
            let had_instr = self.set_has_instruction(set);
            self.lines[i].flags = flags;
            self.lines[i].stamp = self.clock;
            if self.enabled && flags.is_instruction && !had_instr {
                return self.activate_bf(set);
            }
            return None;
        }
        let mut evicted = None;
        if self.enabled && flags.is_instruction && !self.set_has_instruction(set) {
            evicted = self.activate_bf(set);
        }
        let base = set * self.ways;
        let usable = base..base + self.usable_ways(set);
        let victim = usable
            .clone()
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                usable
                    .clone()
                    .min_by_key(|&i| self.lines[i].stamp)
                    .expect("non-empty set")
            });
        if self.lines[victim].valid {
            let out = self.block_from(self.lines[victim].tag, set);
            let was_instr = self.lines[victim].flags.is_instruction;
            evicted = Some(out);
            self.lines[victim] = Line {
                tag: self.tag(block),
                valid: true,
                stamp: self.clock,
                flags,
            };
            if was_instr {
                self.on_instruction_departure(set, out);
            }
        } else {
            self.lines[victim] = Line {
                tag: self.tag(block),
                valid: true,
                stamp: self.clock,
                flags,
            };
        }
        evicted
    }

    /// Invalidates `block` if resident.
    pub fn invalidate(&mut self, block: Block) {
        if let Some(i) = self.find(block) {
            self.lines[i].valid = false;
            let set = self.set_index(block);
            if self.lines[i].flags.is_instruction {
                self.on_instruction_departure(set, block);
            }
        }
    }

    /// Stores the footprint for an instruction block. Silently drops it
    /// (counting `bf_capacity_drops`) if the set's holder is full, or
    /// does nothing when virtualization is disabled or the set is not in
    /// BF mode.
    pub fn insert_bf(&mut self, block: Block, bf: BranchFootprint) {
        if !self.enabled {
            return;
        }
        let set = self.set_index(block);
        if !self.holders[set].active {
            return;
        }
        self.clock += 1;
        let tag = self.tag(block);
        let clock = self.clock;
        let holder = &mut self.holders[set];
        if let Some(e) = holder.entries.iter_mut().find(|(t, _, _)| *t == tag) {
            e.1 = bf;
            e.2 = clock;
            self.stats.bf_inserts += 1;
            return;
        }
        if holder.entries.len() >= self.bf_capacity {
            // Replace the LRU footprint.
            let idx = holder
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, s))| *s)
                .map(|(i, _)| i)
                .expect("holder non-empty");
            holder.entries.swap_remove(idx);
            self.stats.bf_capacity_drops += 1;
        }
        holder.entries.push((tag, bf, clock));
        self.stats.bf_inserts += 1;
    }

    /// Retrieves the footprint for `block`, if stored.
    pub fn bf_lookup(&mut self, block: Block) -> Option<BranchFootprint> {
        let set = self.set_index(block);
        let tag = self.tag(block);
        let found = self.holders[set]
            .entries
            .iter()
            .find(|(t, _, _)| *t == tag)
            .map(|(_, bf, _)| *bf);
        if found.is_some() {
            self.stats.bf_hits += 1;
        } else {
            self.stats.bf_misses += 1;
        }
        found
    }

    /// Number of sets currently in BF-holder mode.
    pub fn bf_mode_sets(&self) -> usize {
        self.holders.iter().filter(|h| h.active).count()
    }

    /// Effective storage overhead of the mode bits, in bits: one
    /// `isInstruction` bit per line (the paper reports < 0.2 % of a
    /// 32 MB LLC).
    pub fn mode_bit_overhead_bits(&self) -> u64 {
        (self.sets * self.ways) as u64
    }

    fn set_has_instruction(&self, set: usize) -> bool {
        let base = set * self.ways;
        (base..base + self.ways).any(|i| self.lines[i].valid && self.lines[i].flags.is_instruction)
    }

    fn activate_bf(&mut self, set: usize) -> Option<Block> {
        if self.holders[set].active {
            return None;
        }
        self.holders[set].active = true;
        self.holders[set].entries.clear();
        self.stats.switches_to_bf += 1;
        // The way at index ways-1 of the set is reserved; relocate or
        // evict its occupant. We model the reservation by evicting the
        // true-LRU valid line if the set was completely full.
        let base = set * self.ways;
        let reserved = base + self.ways - 1;
        if self.lines[reserved].valid {
            // Move the reserved way's occupant into an invalid way if one
            // exists; otherwise evict the set's LRU line and move the
            // occupant there (if the occupant itself is not the LRU).
            let spare = (base..base + self.ways - 1).find(|&i| !self.lines[i].valid);
            match spare {
                Some(i) => {
                    self.lines[i] = self.lines[reserved];
                    self.lines[reserved].valid = false;
                    None
                }
                None => {
                    let lru = (base..base + self.ways)
                        .min_by_key(|&i| self.lines[i].stamp)
                        .expect("non-empty");
                    let out = self.block_from(self.lines[lru].tag, set);
                    self.stats.data_evicted_for_bf += 1;
                    if lru != reserved {
                        self.lines[lru] = self.lines[reserved];
                    }
                    self.lines[reserved].valid = false;
                    Some(out)
                }
            }
        } else {
            None
        }
    }

    fn on_instruction_departure(&mut self, set: usize, _block: Block) {
        if self.holders[set].active && !self.set_has_instruction(set) {
            self.holders[set].active = false;
            self.holders[set].entries.clear();
            self.stats.switches_to_block += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instr_flags() -> LineFlags {
        LineFlags {
            is_instruction: true,
            ..LineFlags::default()
        }
    }

    fn data_flags() -> LineFlags {
        LineFlags::default()
    }

    fn bf(offsets: &[u8]) -> BranchFootprint {
        let mut f = BranchFootprint::new();
        for &o in offsets {
            f.push(o);
        }
        f
    }

    #[test]
    fn data_only_set_uses_all_ways() {
        let mut llc = DvLlc::new(4, 4, 2);
        for i in 0..4u64 {
            llc.fill(i * 4, data_flags()); // all set 0
        }
        for i in 0..4u64 {
            assert!(llc.contains(i * 4), "block {}", i * 4);
        }
        assert_eq!(llc.bf_mode_sets(), 0);
    }

    #[test]
    fn instruction_fill_activates_bf_mode() {
        let mut llc = DvLlc::new(4, 4, 2);
        llc.fill(0, instr_flags());
        assert_eq!(llc.bf_mode_sets(), 1);
        assert_eq!(llc.stats().switches_to_bf, 1);
    }

    #[test]
    fn bf_mode_reduces_usable_ways() {
        let mut llc = DvLlc::new(4, 4, 2);
        llc.fill(0, instr_flags());
        // Only 3 ways now usable in set 0: the 4th fill evicts.
        llc.fill(4, data_flags());
        llc.fill(8, data_flags());
        let evicted = llc.fill(12, data_flags());
        assert!(evicted.is_some());
    }

    #[test]
    fn full_set_activation_evicts_lru_data() {
        let mut llc = DvLlc::new(4, 4, 2);
        for i in 0..4u64 {
            llc.fill(i * 4, data_flags());
        }
        // Touch all but block 0 so block 0 is LRU.
        for i in 1..4u64 {
            llc.demand_access(i * 4, false);
        }
        let evicted = llc.fill(16, instr_flags());
        // Activation evicts the LRU (block 0) for the BF way; the fill
        // itself then evicts the next-LRU (block 4) from the 3 usable
        // ways — two departures total, exactly as in hardware.
        assert_eq!(llc.stats().data_evicted_for_bf, 1);
        assert_eq!(evicted, Some(4));
        assert!(!llc.contains(0));
        assert!(!llc.contains(4));
        assert!(llc.contains(8));
        assert!(llc.contains(12));
        assert!(llc.contains(16));
    }

    #[test]
    fn bf_store_and_lookup() {
        let mut llc = DvLlc::new(4, 4, 4);
        llc.fill(0, instr_flags());
        llc.insert_bf(0, bf(&[4, 12]));
        assert_eq!(llc.bf_lookup(0), Some(bf(&[4, 12])));
        assert_eq!(llc.bf_lookup(16), None);
        let s = llc.stats();
        assert_eq!(s.bf_hits, 1);
        assert_eq!(s.bf_misses, 1);
        assert_eq!(s.bf_inserts, 1);
    }

    #[test]
    fn bf_capacity_evicts_lru_footprint() {
        let mut llc = DvLlc::new(4, 8, 2);
        for i in 0..3u64 {
            llc.fill(i * 4, instr_flags());
            llc.insert_bf(i * 4, bf(&[i as u8]));
        }
        assert_eq!(llc.stats().bf_capacity_drops, 1);
        // The oldest footprint (block 0) was replaced.
        assert_eq!(llc.bf_lookup(0), None);
        assert!(llc.bf_lookup(4).is_some());
        assert!(llc.bf_lookup(8).is_some());
    }

    #[test]
    fn mode_reverts_when_last_instruction_leaves() {
        let mut llc = DvLlc::new(4, 4, 2);
        llc.fill(0, instr_flags());
        llc.insert_bf(0, bf(&[1]));
        assert_eq!(llc.bf_mode_sets(), 1);
        llc.invalidate(0);
        assert_eq!(llc.bf_mode_sets(), 0);
        assert_eq!(llc.stats().switches_to_block, 1);
        // Footprints are gone with the mode.
        llc.fill(0, instr_flags());
        assert_eq!(llc.bf_lookup(0), None);
    }

    #[test]
    fn disabled_dvllc_behaves_conventionally() {
        let mut llc = DvLlc::new(4, 4, 2);
        llc.set_enabled(false);
        llc.fill(0, instr_flags());
        assert_eq!(llc.bf_mode_sets(), 0);
        llc.insert_bf(0, bf(&[1]));
        assert_eq!(llc.stats().bf_inserts, 0);
        // All 4 ways usable.
        for i in 1..4u64 {
            llc.fill(i * 4, data_flags());
        }
        for i in 0..4u64 {
            assert!(llc.contains(i * 4));
        }
    }

    #[test]
    fn hit_ratio_buckets_split_by_kind() {
        let mut llc = DvLlc::new(4, 4, 2);
        llc.fill(0, instr_flags());
        llc.fill(1, data_flags());
        assert!(llc.demand_access(0, true));
        assert!(llc.demand_access(1, false));
        assert!(!llc.demand_access(32, false));
        let s = llc.stats();
        assert_eq!(s.instr_accesses, 1);
        assert_eq!(s.instr_hits, 1);
        assert_eq!(s.data_accesses, 2);
        assert_eq!(s.data_hits, 1);
        assert!((s.instr_hit_ratio() - 1.0).abs() < 1e-12);
        assert!((s.data_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mode_bit_overhead_is_one_bit_per_line() {
        let llc = DvLlc::new(64, 16, 4);
        assert_eq!(llc.mode_bit_overhead_bits(), 64 * 16);
    }

    #[test]
    fn eviction_of_instruction_block_by_data_reverts_mode() {
        let mut llc = DvLlc::new(4, 2, 2);
        llc.fill(0, instr_flags()); // set 0, bf mode on; 1 usable way
                                    // Fill data into the single usable way, evicting the instr block.
        let ev = llc.fill(4, data_flags());
        assert_eq!(ev, Some(0));
        assert_eq!(llc.bf_mode_sets(), 0);
    }

    #[test]
    fn activation_relocates_reserved_way_occupant() {
        let mut llc = DvLlc::new(4, 4, 2);
        // Fill exactly the reserved way by filling all 4 then removing one.
        for i in 0..4u64 {
            llc.fill(i * 4, data_flags());
        }
        llc.invalidate(0);
        llc.invalidate(4);
        // Two free ways: one absorbs the BF reservation (the reserved
        // way's occupant relocates into it), the other takes the new
        // block. No resident block may be lost.
        let ev = llc.fill(16, instr_flags());
        assert_eq!(ev, None);
        assert_eq!(llc.stats().data_evicted_for_bf, 0);
        for b in [8u64, 12, 16] {
            assert!(llc.contains(b), "lost block {b}");
        }
    }
}
