//! # dcfb-cache
//!
//! Cache substrate for the DCFB reproduction: generic set-associative
//! caches with the per-line metadata the paper's prefetchers need
//! (prefetch flag, `isInstruction` bit, 4-bit local prefetch status),
//! a miss-status holding register (MSHR) file, branch footprints (BFs),
//! and the dynamically-virtualized LLC (DV-LLC) of §V-D that stores BFs
//! in the LRU way of sets holding instruction blocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dvllc;
pub mod footprint;
pub mod mshr;
pub mod prefetch_buffer;

pub use cache::{CacheConfig, CacheStats, Evicted, LineFlags, SetAssocCache};
pub use dvllc::{DvLlc, DvLlcStats};
pub use footprint::BranchFootprint;
pub use mshr::{Completion, MshrFile, MshrOutcome};
pub use prefetch_buffer::PrefetchBuffer;
