//! Miss-status holding registers (MSHRs).
//!
//! Tracks outstanding block fetches between a cache and the lower
//! hierarchy. Secondary misses merge into the existing entry; a demand
//! merging into a prefetch-initiated entry *promotes* it (the paper's
//! CMAL metric measures exactly these partially-covered misses).

use dcfb_telemetry::PfSource;
use dcfb_trace::Block;

/// Result of [`MshrFile::allocate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the request must be sent below.
    Allocated,
    /// The block was already outstanding; this request merged.
    Merged {
        /// Cycle at which the outstanding fetch completes.
        ready_at: u64,
        /// Whether the original requester was a prefetch.
        was_prefetch: bool,
    },
    /// No free entry; the requester must stall/retry.
    Full,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    block: Block,
    issued_at: u64,
    ready_at: u64,
    source: PfSource,
    demand_waiting: bool,
}

impl Entry {
    fn is_prefetch(&self) -> bool {
        self.source.is_prefetch()
    }
}

/// A fixed-capacity MSHR file.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    peak: usize,
}

/// A completed fetch popped from the MSHR file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The block whose fetch completed.
    pub block: Block,
    /// Cycle the request was issued.
    pub issued_at: u64,
    /// Cycle it completed.
    pub ready_at: u64,
    /// Whether the *originating* request was a prefetch.
    pub is_prefetch: bool,
    /// Who issued the originating request.
    pub source: PfSource,
    /// Whether a demand access is waiting on this block.
    pub demand_waiting: bool,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Attempts to allocate (or merge into) an entry for `block`
    /// completing at `ready_at`. The requester identifies itself with
    /// a [`PfSource`] tag ([`PfSource::Demand`] for demand fetches)
    /// so completions and telemetry can attribute the fetch.
    pub fn allocate(
        &mut self,
        block: Block,
        now: u64,
        ready_at: u64,
        source: PfSource,
    ) -> MshrOutcome {
        let is_prefetch = source.is_prefetch();
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            if !is_prefetch {
                e.demand_waiting = true;
            }
            return MshrOutcome::Merged {
                ready_at: e.ready_at,
                was_prefetch: e.is_prefetch(),
            };
        }
        if self.entries.len() == self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.push(Entry {
            block,
            issued_at: now,
            ready_at,
            source,
            demand_waiting: !is_prefetch,
        });
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Returns `true` if `block` is outstanding.
    pub fn contains(&self, block: Block) -> bool {
        self.entries.iter().any(|e| e.block == block)
    }

    /// The completion cycle of an outstanding `block`, if any.
    pub fn ready_at(&self, block: Block) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.block == block)
            .map(|e| e.ready_at)
    }

    /// Whether the outstanding entry for `block` originated as a
    /// prefetch.
    pub fn is_prefetch(&self, block: Block) -> Option<bool> {
        self.entries
            .iter()
            .find(|e| e.block == block)
            .map(Entry::is_prefetch)
    }

    /// The source tag of the outstanding entry for `block`.
    pub fn source_of(&self, block: Block) -> Option<PfSource> {
        self.entries
            .iter()
            .find(|e| e.block == block)
            .map(|e| e.source)
    }

    /// Removes and returns every entry whose fetch has completed by
    /// `now`, in completion order.
    pub fn drain_ready(&mut self, now: u64) -> Vec<Completion> {
        let mut done: Vec<Completion> = Vec::new();
        self.drain_ready_into(now, &mut done);
        done
    }

    /// Allocation-free variant of [`MshrFile::drain_ready`]: appends
    /// completions to `done` (cleared first) so the per-cycle fill loop
    /// can reuse one scratch vector.
    pub fn drain_ready_into(&mut self, now: u64, done: &mut Vec<Completion>) {
        done.clear();
        self.entries.retain(|e| {
            if e.ready_at <= now {
                done.push(Completion {
                    block: e.block,
                    issued_at: e.issued_at,
                    ready_at: e.ready_at,
                    is_prefetch: e.is_prefetch(),
                    source: e.source,
                    demand_waiting: e.demand_waiting,
                });
                false
            } else {
                true
            }
        });
        done.sort_by_key(|c| c.ready_at);
    }

    /// Number of outstanding entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// High-water mark of occupancy since creation.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: PfSource = PfSource::Demand;
    const P: PfSource = PfSource::NextLine;

    #[test]
    fn allocate_then_drain() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(10, 0, 20, D), MshrOutcome::Allocated);
        assert!(m.contains(10));
        assert_eq!(m.ready_at(10), Some(20));
        assert!(m.drain_ready(19).is_empty());
        let done = m.drain_ready(20);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].block, 10);
        assert!(done[0].demand_waiting);
        assert!(!m.contains(10));
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(2);
        m.allocate(5, 0, 30, P);
        match m.allocate(5, 3, 99, D) {
            MshrOutcome::Merged {
                ready_at,
                was_prefetch,
            } => {
                assert_eq!(ready_at, 30);
                assert!(was_prefetch);
            }
            other => panic!("expected merge, got {other:?}"),
        }
        // Demand merge marks demand_waiting on a prefetch entry.
        let done = m.drain_ready(30);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_prefetch);
        assert!(done[0].demand_waiting);
    }

    #[test]
    fn full_file_rejects() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 0, 10, D);
        m.allocate(2, 0, 10, D);
        assert_eq!(m.allocate(3, 0, 10, D), MshrOutcome::Full);
        assert!(m.is_full());
        m.drain_ready(10);
        assert_eq!(m.allocate(3, 11, 20, D), MshrOutcome::Allocated);
    }

    #[test]
    fn drain_orders_by_completion() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 0, 30, D);
        m.allocate(2, 0, 10, D);
        m.allocate(3, 0, 20, D);
        let done = m.drain_ready(100);
        let blocks: Vec<_> = done.iter().map(|c| c.block).collect();
        assert_eq!(blocks, vec![2, 3, 1]);
    }

    #[test]
    fn prefetch_only_entry_has_no_demand_waiting() {
        let mut m = MshrFile::new(2);
        m.allocate(9, 0, 5, P);
        let done = m.drain_ready(5);
        assert!(done[0].is_prefetch);
        assert!(!done[0].demand_waiting);
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut m = MshrFile::new(8);
        m.allocate(1, 0, 10, D);
        m.allocate(2, 0, 10, D);
        m.allocate(3, 0, 10, D);
        m.drain_ready(10);
        m.allocate(4, 11, 20, D);
        assert_eq!(m.peak_occupancy(), 3);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
