//! Miss-status holding registers (MSHRs).
//!
//! Tracks outstanding block fetches between a cache and the lower
//! hierarchy. Secondary misses merge into the existing entry; a demand
//! merging into a prefetch-initiated entry *promotes* it (the paper's
//! CMAL metric measures exactly these partially-covered misses).

use dcfb_telemetry::PfSource;
use dcfb_trace::Block;

/// Result of [`MshrFile::allocate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the request must be sent below.
    Allocated,
    /// The block was already outstanding; this request merged.
    Merged {
        /// Cycle at which the outstanding fetch completes.
        ready_at: u64,
        /// Whether the original requester was a prefetch.
        was_prefetch: bool,
    },
    /// No free entry; the requester must stall/retry.
    Full,
}

/// A fixed-capacity MSHR file.
///
/// Laid out struct-of-arrays: every lookup on the hot path scans only
/// the dense `blocks` array (one cache line covers eight entries), and
/// the companion fields are touched just on the matching index.
#[derive(Clone, Debug)]
pub struct MshrFile {
    blocks: Vec<Block>,
    issued_at: Vec<u64>,
    ready_at: Vec<u64>,
    source: Vec<PfSource>,
    demand_waiting: Vec<bool>,
    capacity: usize,
    peak: usize,
}

/// A completed fetch popped from the MSHR file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The block whose fetch completed.
    pub block: Block,
    /// Cycle the request was issued.
    pub issued_at: u64,
    /// Cycle it completed.
    pub ready_at: u64,
    /// Whether the *originating* request was a prefetch.
    pub is_prefetch: bool,
    /// Who issued the originating request.
    pub source: PfSource,
    /// Whether a demand access is waiting on this block.
    pub demand_waiting: bool,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile {
            blocks: Vec::with_capacity(capacity),
            issued_at: Vec::with_capacity(capacity),
            ready_at: Vec::with_capacity(capacity),
            source: Vec::with_capacity(capacity),
            demand_waiting: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    fn find(&self, block: Block) -> Option<usize> {
        self.blocks.iter().position(|&b| b == block)
    }

    /// Attempts to allocate (or merge into) an entry for `block`
    /// completing at `ready_at`. The requester identifies itself with
    /// a [`PfSource`] tag ([`PfSource::Demand`] for demand fetches)
    /// so completions and telemetry can attribute the fetch.
    pub fn allocate(
        &mut self,
        block: Block,
        now: u64,
        ready_at: u64,
        source: PfSource,
    ) -> MshrOutcome {
        let is_prefetch = source.is_prefetch();
        if let Some(i) = self.find(block) {
            if !is_prefetch {
                self.demand_waiting[i] = true;
            }
            return MshrOutcome::Merged {
                ready_at: self.ready_at[i],
                was_prefetch: self.source[i].is_prefetch(),
            };
        }
        if self.blocks.len() == self.capacity {
            return MshrOutcome::Full;
        }
        self.blocks.push(block);
        self.issued_at.push(now);
        self.ready_at.push(ready_at);
        self.source.push(source);
        self.demand_waiting.push(!is_prefetch);
        self.peak = self.peak.max(self.blocks.len());
        MshrOutcome::Allocated
    }

    /// Returns `true` if `block` is outstanding.
    pub fn contains(&self, block: Block) -> bool {
        self.find(block).is_some()
    }

    /// The completion cycle of an outstanding `block`, if any.
    pub fn ready_at(&self, block: Block) -> Option<u64> {
        self.find(block).map(|i| self.ready_at[i])
    }

    /// Whether the outstanding entry for `block` originated as a
    /// prefetch.
    pub fn is_prefetch(&self, block: Block) -> Option<bool> {
        self.find(block).map(|i| self.source[i].is_prefetch())
    }

    /// The source tag of the outstanding entry for `block`.
    pub fn source_of(&self, block: Block) -> Option<PfSource> {
        self.find(block).map(|i| self.source[i])
    }

    /// Removes and returns every entry whose fetch has completed by
    /// `now`, in completion order.
    pub fn drain_ready(&mut self, now: u64) -> Vec<Completion> {
        let mut done: Vec<Completion> = Vec::new();
        self.drain_ready_into(now, &mut done);
        done
    }

    /// Allocation-free variant of [`MshrFile::drain_ready`]: appends
    /// completions to `done` (cleared first) so the per-cycle fill loop
    /// can reuse one scratch vector.
    pub fn drain_ready_into(&mut self, now: u64, done: &mut Vec<Completion>) {
        done.clear();
        // In-place compaction across the parallel arrays, preserving
        // insertion order (so the stable sort below tie-breaks equal
        // `ready_at` by allocation order, as `Vec::retain` did).
        let mut w = 0;
        for r in 0..self.blocks.len() {
            if self.ready_at[r] <= now {
                done.push(Completion {
                    block: self.blocks[r],
                    issued_at: self.issued_at[r],
                    ready_at: self.ready_at[r],
                    is_prefetch: self.source[r].is_prefetch(),
                    source: self.source[r],
                    demand_waiting: self.demand_waiting[r],
                });
            } else {
                if w != r {
                    self.blocks[w] = self.blocks[r];
                    self.issued_at[w] = self.issued_at[r];
                    self.ready_at[w] = self.ready_at[r];
                    self.source[w] = self.source[r];
                    self.demand_waiting[w] = self.demand_waiting[r];
                }
                w += 1;
            }
        }
        self.blocks.truncate(w);
        self.issued_at.truncate(w);
        self.ready_at.truncate(w);
        self.source.truncate(w);
        self.demand_waiting.truncate(w);
        done.sort_by_key(|c| c.ready_at);
    }

    /// Number of outstanding entries.
    pub fn occupancy(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the file is at capacity.
    pub fn is_full(&self) -> bool {
        self.blocks.len() == self.capacity
    }

    /// High-water mark of occupancy since creation.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: PfSource = PfSource::Demand;
    const P: PfSource = PfSource::NextLine;

    #[test]
    fn allocate_then_drain() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(10, 0, 20, D), MshrOutcome::Allocated);
        assert!(m.contains(10));
        assert_eq!(m.ready_at(10), Some(20));
        assert!(m.drain_ready(19).is_empty());
        let done = m.drain_ready(20);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].block, 10);
        assert!(done[0].demand_waiting);
        assert!(!m.contains(10));
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(2);
        m.allocate(5, 0, 30, P);
        match m.allocate(5, 3, 99, D) {
            MshrOutcome::Merged {
                ready_at,
                was_prefetch,
            } => {
                assert_eq!(ready_at, 30);
                assert!(was_prefetch);
            }
            other => panic!("expected merge, got {other:?}"),
        }
        // Demand merge marks demand_waiting on a prefetch entry.
        let done = m.drain_ready(30);
        assert_eq!(done.len(), 1);
        assert!(done[0].is_prefetch);
        assert!(done[0].demand_waiting);
    }

    #[test]
    fn full_file_rejects() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 0, 10, D);
        m.allocate(2, 0, 10, D);
        assert_eq!(m.allocate(3, 0, 10, D), MshrOutcome::Full);
        assert!(m.is_full());
        m.drain_ready(10);
        assert_eq!(m.allocate(3, 11, 20, D), MshrOutcome::Allocated);
    }

    #[test]
    fn drain_orders_by_completion() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 0, 30, D);
        m.allocate(2, 0, 10, D);
        m.allocate(3, 0, 20, D);
        let done = m.drain_ready(100);
        let blocks: Vec<_> = done.iter().map(|c| c.block).collect();
        assert_eq!(blocks, vec![2, 3, 1]);
    }

    #[test]
    fn prefetch_only_entry_has_no_demand_waiting() {
        let mut m = MshrFile::new(2);
        m.allocate(9, 0, 5, P);
        let done = m.drain_ready(5);
        assert!(done[0].is_prefetch);
        assert!(!done[0].demand_waiting);
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut m = MshrFile::new(8);
        m.allocate(1, 0, 10, D);
        m.allocate(2, 0, 10, D);
        m.allocate(3, 0, 10, D);
        m.drain_ready(10);
        m.allocate(4, 11, 20, D);
        assert_eq!(m.peak_occupancy(), 3);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
