//! Branch footprints (BFs).
//!
//! A branch footprint names the branch instructions inside one 64-byte
//! instruction block by their starting byte offsets. §IV of the paper
//! shows that four entries per block cover almost all branches (Fig. 8);
//! each byte offset needs 6 bits, so one BF costs 3 bytes.
//!
//! BFs exist to support BTB prefetching on variable-length ISAs, where a
//! pre-decoder cannot find instruction boundaries on its own: it jumps
//! straight to the recorded offsets instead (§V-D).

use dcfb_trace::{StaticInstr, BLOCK_BYTES};

/// The number of branch byte-offsets one footprint can hold.
pub const BF_CAPACITY: usize = 4;

/// Storage cost of one footprint in bits (4 offsets × 6 bits).
pub const BF_BITS: u32 = 24;

/// A branch footprint: up to [`BF_CAPACITY`] byte offsets of branch
/// instructions within one cache block, in ascending order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchFootprint {
    offsets: [u8; BF_CAPACITY],
    len: u8,
}

impl BranchFootprint {
    /// An empty footprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a footprint from the static instructions of a block,
    /// keeping the first [`BF_CAPACITY`] branches in address order and
    /// reporting how many branches did not fit.
    ///
    /// Returns `(footprint, overflow_count)`.
    pub fn from_block(instrs: &[StaticInstr]) -> (Self, usize) {
        let mut bf = BranchFootprint::new();
        let mut overflow = 0;
        for i in instrs {
            if i.kind.is_branch() {
                if !bf.push(i.byte_offset() as u8) {
                    overflow += 1;
                }
            }
        }
        (bf, overflow)
    }

    /// Adds a branch byte-offset; returns `false` (dropping the offset)
    /// if the footprint is full or the offset is a duplicate.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not a valid offset within a 64-byte block.
    pub fn push(&mut self, offset: u8) -> bool {
        assert!(
            u64::from(offset) < BLOCK_BYTES,
            "offset {offset} outside block"
        );
        if self.contains(offset) {
            return true; // already covered
        }
        if (self.len as usize) == BF_CAPACITY {
            return false;
        }
        self.offsets[self.len as usize] = offset;
        self.len += 1;
        self.offsets[..self.len as usize].sort_unstable();
        true
    }

    /// Whether `offset` is recorded.
    pub fn contains(&self, offset: u8) -> bool {
        self.offsets[..self.len as usize].contains(&offset)
    }

    /// The recorded offsets in ascending order.
    pub fn offsets(&self) -> &[u8] {
        &self.offsets[..self.len as usize]
    }

    /// Number of recorded offsets.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no offsets are recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcfb_trace::StaticKind;

    fn branch_at(pc: u64) -> StaticInstr {
        StaticInstr {
            pc,
            size: 4,
            kind: StaticKind::CondBranch,
            target: Some(0),
        }
    }

    fn other_at(pc: u64) -> StaticInstr {
        StaticInstr {
            pc,
            size: 4,
            kind: StaticKind::Other,
            target: None,
        }
    }

    #[test]
    fn from_block_collects_branches_only() {
        let instrs = vec![
            other_at(0x100),
            branch_at(0x104),
            other_at(0x108),
            branch_at(0x10c),
        ];
        let (bf, overflow) = BranchFootprint::from_block(&instrs);
        assert_eq!(bf.offsets(), &[0x04, 0x0c]);
        assert_eq!(overflow, 0);
    }

    #[test]
    fn overflow_counts_dropped_branches() {
        let instrs: Vec<_> = (0..6).map(|i| branch_at(0x200 + i * 4)).collect();
        let (bf, overflow) = BranchFootprint::from_block(&instrs);
        assert_eq!(bf.len(), BF_CAPACITY);
        assert_eq!(overflow, 2);
        // The first four in address order are kept.
        assert_eq!(bf.offsets(), &[0, 4, 8, 12]);
    }

    #[test]
    fn push_deduplicates() {
        let mut bf = BranchFootprint::new();
        assert!(bf.push(10));
        assert!(bf.push(10));
        assert_eq!(bf.len(), 1);
    }

    #[test]
    fn push_keeps_sorted() {
        let mut bf = BranchFootprint::new();
        bf.push(40);
        bf.push(4);
        bf.push(20);
        assert_eq!(bf.offsets(), &[4, 20, 40]);
    }

    #[test]
    fn full_footprint_rejects() {
        let mut bf = BranchFootprint::new();
        for o in [0, 8, 16, 24] {
            assert!(bf.push(o));
        }
        assert!(!bf.push(32));
        assert_eq!(bf.len(), 4);
        // But a duplicate of an existing entry still "succeeds".
        assert!(bf.push(8));
    }

    #[test]
    #[should_panic(expected = "outside block")]
    fn offset_out_of_range_panics() {
        let mut bf = BranchFootprint::new();
        bf.push(64);
    }

    #[test]
    fn storage_cost_is_three_bytes() {
        assert_eq!(BF_BITS, 24);
        assert_eq!(BF_CAPACITY, 4);
    }

    #[test]
    fn empty_footprint() {
        let bf = BranchFootprint::new();
        assert!(bf.is_empty());
        assert!(!bf.contains(0));
        assert!(bf.offsets().is_empty());
    }
}
