//! Generic set-associative cache with true-LRU replacement.
//!
//! Addresses are *block numbers* ([`dcfb_trace::Block`]): the byte offset
//! has already been stripped by the caller. The cache tracks the per-line
//! metadata the paper relies on:
//!
//! * `prefetched` — the 1-bit prefetch flag every block carries ("the
//!   flag indicates whether the cache block is brought into the cache by
//!   the prefetcher or the fetch demand", §V-A),
//! * `demanded` — whether a demand access touched the line after the
//!   fill (used to classify evicted prefetches as useless),
//! * `is_instruction` — the DV-LLC mode bit (§V-D),
//! * `local_status` — SN4L's 4-bit local prefetch status cached next to
//!   the line to avoid SeqTable lookups (§V-A).

use dcfb_trace::Block;

/// Geometry of a set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets. Must be a power of two and non-zero.
    pub sets: usize,
    /// Associativity. Must be non-zero.
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a configuration from a total capacity in KiB and an
    /// associativity, assuming 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is zero or not a power of two,
    /// or if `ways` is zero.
    pub fn from_kib(size_kib: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be non-zero");
        let blocks = size_kib * 1024 / 64;
        assert!(
            blocks % ways == 0,
            "{size_kib} KiB does not divide into {ways} ways"
        );
        let sets = blocks / ways;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} not a power of two"
        );
        CacheConfig { sets, ways }
    }

    /// The paper's L1i: 32 KiB, 8-way, 64 B blocks (Table III).
    pub fn l1i() -> Self {
        CacheConfig::from_kib(32, 8)
    }

    /// One bank of the paper's shared LLC: 32 MiB, 16-way over 16 banks —
    /// a single-core-visible slice of 2 MiB, 16-way.
    pub fn llc_slice() -> Self {
        CacheConfig::from_kib(2 * 1024, 16)
    }

    /// Total capacity in blocks.
    pub fn blocks(&self) -> usize {
        self.sets * self.ways
    }

    /// Total capacity in KiB.
    pub fn size_kib(&self) -> usize {
        self.blocks() * 64 / 1024
    }

    #[inline]
    fn set_index(&self, block: Block) -> usize {
        (block as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag(&self, block: Block) -> u64 {
        block >> self.sets.trailing_zeros()
    }
}

/// Per-line metadata flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineFlags {
    /// Brought in by a prefetcher (cleared on first demand hit, §V-A).
    pub prefetched: bool,
    /// A demand access has touched this line since the fill.
    pub demanded: bool,
    /// The line holds instructions (DV-LLC mode bit, §V-D).
    pub is_instruction: bool,
    /// SN4L's 4-bit local prefetch status for the four subsequent blocks.
    pub local_status: u8,
}

impl LineFlags {
    /// Flags for a demand fill of an instruction block.
    pub fn demand_instruction() -> Self {
        LineFlags {
            prefetched: false,
            demanded: true,
            is_instruction: true,
            local_status: 0,
        }
    }

    /// Flags for a prefetch fill of an instruction block.
    pub fn prefetched_instruction() -> Self {
        LineFlags {
            prefetched: true,
            demanded: false,
            is_instruction: true,
            local_status: 0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    stamp: u64,
    flags: LineFlags,
}

impl Line {
    fn empty() -> Self {
        Line {
            tag: 0,
            valid: false,
            stamp: 0,
            flags: LineFlags::default(),
        }
    }
}

/// A line evicted by [`SetAssocCache::fill`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Block number of the victim.
    pub block: Block,
    /// Metadata of the victim at eviction time.
    pub flags: LineFlags,
}

/// Hit/miss and prefetch-usefulness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups.
    pub demand_accesses: u64,
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Demand hits on lines whose prefetch flag was still set
    /// (useful prefetches).
    pub prefetch_hits: u64,
    /// Fills performed (demand + prefetch).
    pub fills: u64,
    /// Fills tagged as prefetches.
    pub prefetch_fills: u64,
    /// Valid lines evicted.
    pub evictions: u64,
    /// Evicted lines that were prefetched and never demanded
    /// (useless prefetches).
    pub useless_prefetch_evictions: u64,
    /// Non-demand probes (prefetcher lookups, ports permitting).
    pub probes: u64,
}

impl CacheStats {
    /// Demand miss ratio in `[0, 1]`; `0` when no accesses happened.
    pub fn miss_ratio(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Accumulates another window's counters into this one (shard
    /// stitching: every field is a sum-mergeable event count).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.demand_accesses += other.demand_accesses;
        self.demand_hits += other.demand_hits;
        self.demand_misses += other.demand_misses;
        self.prefetch_hits += other.prefetch_hits;
        self.fills += other.fills;
        self.prefetch_fills += other.prefetch_fills;
        self.evictions += other.evictions;
        self.useless_prefetch_evictions += other.useless_prefetch_evictions;
        self.probes += other.probes;
    }
}

/// A set-associative, true-LRU cache over block numbers.
///
/// # Examples
///
/// ```
/// use dcfb_cache::{CacheConfig, LineFlags, SetAssocCache};
///
/// let mut l1i = SetAssocCache::new(CacheConfig::l1i());
/// assert!(!l1i.demand_access(42));                        // cold miss
/// l1i.fill(42, LineFlags::prefetched_instruction());
/// assert!(l1i.demand_access(42));                         // prefetch hit
/// assert_eq!(l1i.stats().prefetch_hits, 1);
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        SetAssocCache {
            cfg,
            lines: vec![Line::empty(); cfg.blocks()],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (keeps contents — used after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, block: Block) -> std::ops::Range<usize> {
        let set = self.cfg.set_index(block);
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    fn find(&self, block: Block) -> Option<usize> {
        let tag = self.cfg.tag(block);
        self.set_range(block)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Demand access: updates LRU and statistics; on a hit to a
    /// prefetched line, counts a useful prefetch and clears the prefetch
    /// flag (per §V-A "upon demand access to a prefetched block, we reset
    /// the prefetch flag").
    ///
    /// Returns `true` on a hit.
    pub fn demand_access(&mut self, block: Block) -> bool {
        self.clock += 1;
        self.stats.demand_accesses += 1;
        if let Some(i) = self.find(block) {
            self.stats.demand_hits += 1;
            self.lines[i].stamp = self.clock;
            if self.lines[i].flags.prefetched {
                self.stats.prefetch_hits += 1;
                self.lines[i].flags.prefetched = false;
            }
            self.lines[i].flags.demanded = true;
            true
        } else {
            self.stats.demand_misses += 1;
            false
        }
    }

    /// Non-demand probe (prefetcher cache lookup): no LRU update; counted
    /// separately in the statistics.
    pub fn probe(&mut self, block: Block) -> bool {
        self.stats.probes += 1;
        self.find(block).is_some()
    }

    /// Returns `true` if `block` is resident, without touching LRU or
    /// statistics.
    pub fn contains(&self, block: Block) -> bool {
        self.find(block).is_some()
    }

    /// Read-only access to a resident line's flags.
    pub fn flags(&self, block: Block) -> Option<LineFlags> {
        self.find(block).map(|i| self.lines[i].flags)
    }

    /// Mutable access to a resident line's flags.
    pub fn flags_mut(&mut self, block: Block) -> Option<&mut LineFlags> {
        self.find(block).map(|i| &mut self.lines[i].flags)
    }

    /// Inserts `block` with `flags`, evicting the LRU line if the set is
    /// full. If the block is already resident, only its flags are
    /// replaced (no eviction, no LRU promotion).
    pub fn fill(&mut self, block: Block, flags: LineFlags) -> Option<Evicted> {
        self.clock += 1;
        self.stats.fills += 1;
        if flags.prefetched {
            self.stats.prefetch_fills += 1;
        }
        if let Some(i) = self.find(block) {
            self.lines[i].flags = flags;
            return None;
        }
        let range = self.set_range(block);
        let tag = self.cfg.tag(block);
        // Prefer an invalid way; otherwise evict LRU (min stamp).
        let victim = range
            .clone()
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                range
                    .clone()
                    .min_by_key(|&i| self.lines[i].stamp)
                    .expect("non-empty set")
            });
        let evicted = if self.lines[victim].valid {
            self.stats.evictions += 1;
            let f = self.lines[victim].flags;
            if f.prefetched && !f.demanded {
                self.stats.useless_prefetch_evictions += 1;
            }
            let set_bits = self.cfg.sets.trailing_zeros();
            let set = self.cfg.set_index(block) as u64;
            Some(Evicted {
                block: (self.lines[victim].tag << set_bits) | set,
                flags: f,
            })
        } else {
            None
        };
        self.lines[victim] = Line {
            tag,
            valid: true,
            stamp: self.clock,
            flags,
        };
        evicted
    }

    /// Invalidates `block` if resident; returns its flags.
    pub fn invalidate(&mut self, block: Block) -> Option<LineFlags> {
        let i = self.find(block)?;
        self.lines[i].valid = false;
        Some(self.lines[i].flags)
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over resident blocks in `block`'s set, MRU first.
    pub fn set_contents(&self, block: Block) -> Vec<(Block, LineFlags)> {
        let set_bits = self.cfg.sets.trailing_zeros();
        let set = self.cfg.set_index(block) as u64;
        let mut v: Vec<(u64, Block, LineFlags)> = self
            .set_range(block)
            .filter(|&i| self.lines[i].valid)
            .map(|i| {
                (
                    self.lines[i].stamp,
                    (self.lines[i].tag << set_bits) | set,
                    self.lines[i].flags,
                )
            })
            .collect();
        v.sort_by(|a, b| b.0.cmp(&a.0));
        v.into_iter().map(|(_, b, f)| (b, f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets, 2 ways.
        SetAssocCache::new(CacheConfig { sets: 4, ways: 2 })
    }

    #[test]
    fn config_from_kib() {
        let c = CacheConfig::l1i();
        assert_eq!(c.sets, 64);
        assert_eq!(c.ways, 8);
        assert_eq!(c.size_kib(), 32);
        let llc = CacheConfig::llc_slice();
        assert_eq!(llc.size_kib(), 2048);
        assert_eq!(llc.ways, 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_non_power_of_two_sets() {
        let _ = CacheConfig::from_kib(24, 8 * 16); // 384/128 = 3 sets
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.demand_access(100));
        assert!(c.fill(100, LineFlags::demand_instruction()).is_none());
        assert!(c.demand_access(100));
        let s = c.stats();
        assert_eq!(s.demand_accesses, 2);
        assert_eq!(s.demand_hits, 1);
        assert_eq!(s.demand_misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, LineFlags::default());
        c.fill(4, LineFlags::default());
        // Touch 0, making 4 the LRU.
        assert!(c.demand_access(0));
        let ev = c.fill(8, LineFlags::default()).expect("must evict");
        assert_eq!(ev.block, 4);
        assert!(c.contains(0));
        assert!(c.contains(8));
        assert!(!c.contains(4));
    }

    #[test]
    fn eviction_reconstructs_block_number() {
        let mut c = tiny();
        let b = 0xabcd_ef12u64 & !0b11 | 0b01; // set 1
        c.fill(b, LineFlags::default());
        c.fill(b + 4, LineFlags::default());
        c.demand_access(b + 4);
        let ev = c.fill(b + 8, LineFlags::default()).unwrap();
        assert_eq!(ev.block, b);
    }

    #[test]
    fn prefetch_flag_lifecycle() {
        let mut c = tiny();
        c.fill(7, LineFlags::prefetched_instruction());
        assert!(c.flags(7).unwrap().prefetched);
        assert!(c.demand_access(7));
        // First demand hit clears the flag and counts a useful prefetch.
        assert!(!c.flags(7).unwrap().prefetched);
        assert!(c.flags(7).unwrap().demanded);
        assert_eq!(c.stats().prefetch_hits, 1);
        // Second hit does not double-count.
        assert!(c.demand_access(7));
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn useless_prefetch_eviction_counted() {
        let mut c = tiny();
        c.fill(0, LineFlags::prefetched_instruction());
        c.fill(4, LineFlags::default());
        c.demand_access(4);
        // Evict block 0: prefetched, never demanded -> useless.
        c.fill(8, LineFlags::default());
        assert_eq!(c.stats().useless_prefetch_evictions, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn useful_prefetch_eviction_not_counted_useless() {
        let mut c = tiny();
        c.fill(0, LineFlags::prefetched_instruction());
        c.demand_access(0); // becomes useful
        c.fill(4, LineFlags::default());
        c.demand_access(4);
        c.fill(8, LineFlags::default()); // evicts 0
        assert_eq!(c.stats().useless_prefetch_evictions, 0);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.fill(0, LineFlags::default());
        c.fill(4, LineFlags::default());
        c.demand_access(4);
        // Probing 0 must NOT promote it.
        assert!(c.probe(0));
        let ev = c.fill(8, LineFlags::default()).unwrap();
        assert_eq!(ev.block, 0);
        assert_eq!(c.stats().probes, 1);
    }

    #[test]
    fn refill_resident_block_updates_flags_only() {
        let mut c = tiny();
        c.fill(0, LineFlags::default());
        c.fill(4, LineFlags::default());
        let before = c.occupancy();
        assert!(c.fill(0, LineFlags::prefetched_instruction()).is_none());
        assert_eq!(c.occupancy(), before);
        assert!(c.flags(0).unwrap().prefetched);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(3, LineFlags::demand_instruction());
        assert!(c.invalidate(3).is_some());
        assert!(!c.contains(3));
        assert!(c.invalidate(3).is_none());
    }

    #[test]
    fn local_status_round_trips() {
        let mut c = tiny();
        c.fill(5, LineFlags::default());
        c.flags_mut(5).unwrap().local_status = 0b1010;
        assert_eq!(c.flags(5).unwrap().local_status, 0b1010);
    }

    #[test]
    fn set_contents_mru_order() {
        let mut c = tiny();
        c.fill(0, LineFlags::default());
        c.fill(4, LineFlags::default());
        c.demand_access(0);
        let contents = c.set_contents(0);
        assert_eq!(contents.len(), 2);
        assert_eq!(contents[0].0, 0); // MRU
        assert_eq!(contents[1].0, 4);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for b in 0..4u64 {
            c.fill(b, LineFlags::default());
        }
        for b in 0..4u64 {
            assert!(c.contains(b));
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.demand_access(1); // miss
        c.fill(1, LineFlags::default());
        c.demand_access(1); // hit
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Reference model: per-set vector of (block, last-use time).
    #[derive(Default)]
    struct Model {
        sets: HashMap<u64, Vec<u64>>, // MRU-first
        ways: usize,
        set_mask: u64,
    }

    impl Model {
        fn new(cfg: CacheConfig) -> Self {
            Model {
                sets: HashMap::new(),
                ways: cfg.ways,
                set_mask: (cfg.sets - 1) as u64,
            }
        }
        fn touch(&mut self, block: u64) -> bool {
            let set = self.sets.entry(block & self.set_mask).or_default();
            if let Some(pos) = set.iter().position(|&b| b == block) {
                set.remove(pos);
                set.insert(0, block);
                true
            } else {
                false
            }
        }
        fn fill(&mut self, block: u64) {
            let ways = self.ways;
            let set = self.sets.entry(block & self.set_mask).or_default();
            if set.contains(&block) {
                return; // refill does not promote
            }
            if set.len() == ways {
                set.pop();
            }
            set.insert(0, block);
        }
    }

    proptest! {
        #[test]
        fn matches_reference_lru_model(ops in proptest::collection::vec((0u8..2, 0u64..64), 1..400)) {
            let cfg = CacheConfig { sets: 4, ways: 4 };
            let mut cache = SetAssocCache::new(cfg);
            let mut model = Model::new(cfg);
            for (op, block) in ops {
                match op {
                    0 => {
                        let hit = cache.demand_access(block);
                        let model_hit = model.touch(block);
                        prop_assert_eq!(hit, model_hit, "access {}", block);
                        if !hit {
                            cache.fill(block, LineFlags::default());
                            model.fill(block);
                        }
                    }
                    _ => {
                        cache.fill(block, LineFlags::default());
                        model.fill(block);
                    }
                }
            }
            // Final residency must agree.
            for b in 0u64..64 {
                let in_model = model.sets.get(&(b & 3)).map_or(false, |s| s.contains(&b));
                prop_assert_eq!(cache.contains(b), in_model, "residency of {}", b);
            }
        }

        #[test]
        fn occupancy_never_exceeds_capacity(blocks in proptest::collection::vec(0u64..1024, 1..300)) {
            let mut cache = SetAssocCache::new(CacheConfig { sets: 8, ways: 2 });
            for b in blocks {
                cache.fill(b, LineFlags::default());
                prop_assert!(cache.occupancy() <= 16);
            }
        }

        #[test]
        fn hits_plus_misses_equals_accesses(blocks in proptest::collection::vec(0u64..128, 1..300)) {
            let mut cache = SetAssocCache::new(CacheConfig { sets: 4, ways: 2 });
            for b in blocks {
                if !cache.demand_access(b) {
                    cache.fill(b, LineFlags::default());
                }
            }
            let s = cache.stats();
            prop_assert_eq!(s.demand_hits + s.demand_misses, s.demand_accesses);
        }
    }
}
