//! SN4L: the selective next-four-line prefetcher (§V-A).
//!
//! SN4L is an N4L prefetcher whose candidates are gated by a 1-bit
//! usefulness predictor (the [`SeqTable`](crate::tables::SeqTable)):
//! only subsequent blocks that were useful the last time they were
//! prefetched are requested. The state machine follows §V-A exactly:
//!
//! * all SeqTable entries start at 1 (prefetch everything once),
//! * a demand hit on a still-flagged prefetched block *sets* the entry,
//! * evicting a never-demanded prefetched block *resets* the entry,
//! * a demand miss *sets* the entry (the block is clearly wanted).

use crate::context::{InstrPrefetcher, PrefetchContext, RecentInstrs};
use crate::tables::SeqTable;
use dcfb_telemetry::PfSource;
use dcfb_trace::Block;

/// The selective next-four-line sequential prefetcher.
#[derive(Clone, Debug)]
pub struct Sn4l {
    table: SeqTable,
    depth: u32,
    issued: u64,
    suppressed: u64,
}

impl Sn4l {
    /// Creates SN4L with the paper's 16 K-entry SeqTable.
    pub fn paper_sized() -> Self {
        Sn4l::with_table(SeqTable::paper_sized())
    }

    /// Creates SN4L over a custom SeqTable (Fig. 11's size sweep).
    pub fn with_table(table: SeqTable) -> Self {
        Sn4l {
            table,
            depth: 4,
            issued: 0,
            suppressed: 0,
        }
    }

    /// `(issued, suppressed)` prefetch counters; `suppressed` counts
    /// candidates the SeqTable predicted useless.
    pub fn counters(&self) -> (u64, u64) {
        (self.issued, self.suppressed)
    }

    /// Read access to the SeqTable (used by the combined engine and by
    /// analysis binaries).
    pub fn table(&self) -> &SeqTable {
        &self.table
    }
}

impl InstrPrefetcher for Sn4l {
    fn name(&self) -> String {
        "SN4L".to_owned()
    }

    fn storage_bits(&self) -> u64 {
        // SeqTable + per-line metadata: 4-bit local status + 1-bit
        // prefetch flag for each of the 512 L1i lines.
        self.table.storage_bits() + 512 * 5
    }

    fn on_demand(
        &mut self,
        ctx: &mut dyn PrefetchContext,
        block: Block,
        hit: bool,
        hit_was_prefetched: bool,
        _recent: &RecentInstrs,
    ) {
        // Metadata updates (§V-A "Updating the metadata").
        if !hit {
            self.table.set(block);
        } else if hit_was_prefetched {
            self.table.set(block);
        }
        // Prefetching: check the 4 subsequent blocks' status bits.
        for d in 1..=u64::from(self.depth) {
            let cand = block + d;
            if !self.table.is_useful(cand) {
                self.suppressed += 1;
                continue;
            }
            if !ctx.l1i_lookup(cand) {
                ctx.issue_prefetch(cand, PfSource::Sn4l, 0);
                self.issued += 1;
            }
        }
    }

    fn on_evict(&mut self, _ctx: &mut dyn PrefetchContext, block: Block, useless_prefetch: bool) {
        if useless_prefetch {
            self.table.reset(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MockContext;

    fn small() -> Sn4l {
        Sn4l::with_table(SeqTable::new(1 << 16))
    }

    fn demand(p: &mut Sn4l, ctx: &mut MockContext, block: Block, hit: bool) {
        p.on_demand(ctx, block, hit, false, &RecentInstrs::default());
    }

    #[test]
    fn first_touch_prefetches_all_four() {
        let mut p = small();
        let mut ctx = MockContext::default();
        demand(&mut p, &mut ctx, 100, false);
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert_eq!(blocks, vec![101, 102, 103, 104]);
    }

    #[test]
    fn useless_prefetch_is_suppressed_next_time() {
        let mut p = small();
        let mut ctx = MockContext::default();
        demand(&mut p, &mut ctx, 100, false); // prefetches 101..=104
                                              // Block 102 evicted without ever being demanded.
        p.on_evict(&mut ctx, 102, true);
        ctx.issued.clear();
        ctx.resident.clear();
        demand(&mut p, &mut ctx, 100, true);
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert_eq!(blocks, vec![101, 103, 104]);
        assert_eq!(p.counters().1, 1);
    }

    #[test]
    fn useful_prefetch_stays_enabled() {
        let mut p = small();
        let mut ctx = MockContext::default();
        demand(&mut p, &mut ctx, 100, false);
        // 101 demanded while still flagged: useful.
        demand(&mut p, &mut ctx, 101, true);
        // Later evicted after use: eviction hook sees useless=false.
        p.on_evict(&mut ctx, 101, false);
        ctx.issued.clear();
        ctx.resident.clear();
        demand(&mut p, &mut ctx, 100, true);
        assert!(ctx.issued.iter().any(|&(b, _)| b == 101));
    }

    #[test]
    fn demand_miss_reenables_block() {
        let mut p = small();
        let mut ctx = MockContext::default();
        demand(&mut p, &mut ctx, 100, false);
        p.on_evict(&mut ctx, 101, true); // now disabled
        ctx.resident.clear();
        // The processor misses on 101 directly: entry set again.
        demand(&mut p, &mut ctx, 101, false);
        ctx.issued.clear();
        ctx.resident.clear();
        demand(&mut p, &mut ctx, 100, true);
        assert!(ctx.issued.iter().any(|&(b, _)| b == 101));
    }

    #[test]
    fn prefetched_hit_marks_useful() {
        let mut p = small();
        let mut ctx = MockContext::default();
        p.on_evict(&mut ctx, 200, true); // disabled
        assert!(!p.table().is_useful(200));
        p.on_demand(&mut ctx, 200, true, true, &RecentInstrs::default());
        assert!(p.table().is_useful(200));
    }

    #[test]
    fn resident_candidates_not_reissued() {
        let mut p = small();
        let mut ctx = MockContext::default();
        ctx.resident.insert(101);
        demand(&mut p, &mut ctx, 100, false);
        assert!(!ctx.issued.iter().any(|&(b, _)| b == 101));
    }

    #[test]
    fn storage_is_about_2kb() {
        let p = Sn4l::paper_sized();
        let bits = p.storage_bits();
        // 16 Kbit SeqTable + 2.5 Kbit line metadata.
        assert_eq!(bits, 16 * 1024 + 512 * 5);
        assert!(bits / 8 < 3 * 1024);
    }

    #[test]
    fn name_is_sn4l() {
        assert_eq!(small().name(), "SN4L");
    }
}
