//! The method registry: one row per evaluated method.
//!
//! Every way the harness names a prefetching method — the CLI's
//! `--method` flag, `SimConfig::for_method`, the bench sweep's method
//! lists, the conformance digest-parity check — resolves through this
//! single table. A row carries the paper-facing name, a builder for the
//! [`PrefetcherKind`] configuration, and an optional BTB override
//! (Confluence pairs SHIFT with a 16 K-entry BTB).
//!
//! Adding a method — including a *composition* of existing conventional
//! prefetchers, via [`PrefetcherKind::Composed`] — is one new row here;
//! the CLI, sweep, and conformance suites pick it up automatically.

use crate::composite::Composite;
use crate::{
    Boomerang, Confluence, ConfluenceConfig, Dis, DisTable, DiscontinuityPrefetcher,
    InstrPrefetcher, NextLine, SeqTable, Shotgun, Sn4l, Sn4lDisBtb, Sn4lDisConfig, TagPolicy,
};
use dcfb_frontend::{BtbConfig, Ftq, ShotgunBtbConfig, ShotgunBtbStats};
use dcfb_trace::{Addr, Block, Instr, IsaMode};
use std::borrow::Cow;

/// Which prefetcher drives the frontend.
#[derive(Clone, Debug)]
pub enum PrefetcherKind {
    /// No instruction/BTB prefetcher (the speedup baseline).
    None,
    /// Next-X-line sequential prefetcher.
    NextLine(u32),
    /// SN4L alone (Fig. 17's second bar).
    Sn4l {
        /// SeqTable entries (16 K in the paper; swept in Fig. 11).
        seq_entries: usize,
    },
    /// The standalone Dis prefetcher (Fig. 13).
    Dis {
        /// DisTable entries.
        dis_entries: usize,
        /// DisTable tagging policy.
        tag: TagPolicy,
    },
    /// The combined proactive engine; `btb` selects SN4L+Dis vs
    /// SN4L+Dis+BTB.
    Sn4lDis(Sn4lDisConfig),
    /// The conventional discontinuity prefetcher baseline.
    Discontinuity,
    /// Confluence = SHIFT + a 16 K-entry BTB (set `btb` accordingly!).
    Confluence(ConfluenceConfig),
    /// Boomerang (BTB-directed driver).
    Boomerang {
        /// BB-BTB entries.
        btb_entries: usize,
    },
    /// Shotgun (BTB-directed driver with the split BTB).
    Shotgun(ShotgunBtbConfig),
    /// A named composition of conventional (L1i-event-driven)
    /// prefetchers: every part observes the same demand/fill/evict
    /// stream and issues into the same memory hierarchy. BTB-directed
    /// engines cannot be composed this way.
    Composed {
        /// Display label (one registry row per composition).
        label: &'static str,
        /// The composed parts, in hook order.
        parts: Vec<PrefetcherKind>,
    },
}

impl PrefetcherKind {
    /// Display name matching the paper's figures.
    ///
    /// Borrowed for every fixed-name method (the sweep hot path calls
    /// this per run); only degree-parameterized next-line variants
    /// beyond `NL` allocate.
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            PrefetcherKind::None => Cow::Borrowed("Baseline"),
            PrefetcherKind::NextLine(1) => Cow::Borrowed("NL"),
            PrefetcherKind::NextLine(2) => Cow::Borrowed("N2L"),
            PrefetcherKind::NextLine(4) => Cow::Borrowed("N4L"),
            PrefetcherKind::NextLine(8) => Cow::Borrowed("N8L"),
            PrefetcherKind::NextLine(d) => Cow::Owned(format!("N{d}L")),
            PrefetcherKind::Sn4l { .. } => Cow::Borrowed("SN4L"),
            PrefetcherKind::Dis { .. } => Cow::Borrowed("Dis"),
            PrefetcherKind::Sn4lDis(c) if c.btb_prefetch => Cow::Borrowed("SN4L+Dis+BTB"),
            PrefetcherKind::Sn4lDis(_) => Cow::Borrowed("SN4L+Dis"),
            PrefetcherKind::Discontinuity => Cow::Borrowed("Discontinuity"),
            PrefetcherKind::Confluence(_) => Cow::Borrowed("Confluence"),
            PrefetcherKind::Boomerang { .. } => Cow::Borrowed("Boomerang"),
            PrefetcherKind::Shotgun(_) => Cow::Borrowed("Shotgun"),
            PrefetcherKind::Composed { label, .. } => Cow::Borrowed(label),
        }
    }

    /// Whether this prefetcher drives the FTQ (BTB-directed frontend).
    pub fn is_btb_directed(&self) -> bool {
        matches!(
            self,
            PrefetcherKind::Boomerang { .. } | PrefetcherKind::Shotgun(_)
        )
    }

    /// Builds the frontend driver plan this kind configures: either a
    /// conventional decoupled frontend with an optional
    /// [`InstrPrefetcher`], or a BTB-directed [`DiscoveryEngine`].
    ///
    /// `isa` selects the DisTable offset width (§V-D); `start_pc` seeds
    /// the BTB-directed discovery engines.
    pub fn build(&self, isa: IsaMode, start_pc: Addr) -> DriverPlan {
        match self {
            PrefetcherKind::None => DriverPlan::Decoupled(None),
            PrefetcherKind::NextLine(d) => DriverPlan::Decoupled(Some(Box::new(NextLine::new(*d)))),
            PrefetcherKind::Sn4l { seq_entries } => DriverPlan::Decoupled(Some(Box::new(
                Sn4l::with_table(SeqTable::new(*seq_entries)),
            ))),
            PrefetcherKind::Dis { dis_entries, tag } => DriverPlan::Decoupled(Some(Box::new(
                Dis::with_table(DisTable::new(*dis_entries, *tag, isa.dis_offset_bits())),
            ))),
            PrefetcherKind::Sn4lDis(c) => {
                // §V-D: a variable-length ISA needs byte offsets in the
                // DisTable (6 bits) instead of instruction slots.
                let mut c = c.clone();
                c.dis_offset_bits = isa.dis_offset_bits();
                DriverPlan::Decoupled(Some(Box::new(Sn4lDisBtb::new(c))))
            }
            PrefetcherKind::Discontinuity => {
                DriverPlan::Decoupled(Some(Box::new(DiscontinuityPrefetcher::paper_baseline())))
            }
            PrefetcherKind::Confluence(c) => {
                DriverPlan::Decoupled(Some(Box::new(Confluence::new(*c))))
            }
            PrefetcherKind::Boomerang { btb_entries } => {
                DriverPlan::Directed(Box::new(Boomerang::new(*btb_entries, start_pc)))
            }
            PrefetcherKind::Shotgun(sc) => {
                DriverPlan::Directed(Box::new(Shotgun::new(*sc, start_pc)))
            }
            PrefetcherKind::Composed { label, parts } => {
                // BTB-directed parts cannot ride a decoupled frontend;
                // `SimConfig::validate` rejects them before a run, and
                // the builder simply skips them for defense in depth.
                let built = parts
                    .iter()
                    .filter_map(|p| match p.build(isa, start_pc) {
                        DriverPlan::Decoupled(pf) => pf,
                        DriverPlan::Directed(_) => None,
                    })
                    .collect();
                DriverPlan::Decoupled(Some(Box::new(Composite::new(label, built))))
            }
        }
    }
}

/// What a [`PrefetcherKind`] builds: the two frontend driver shapes the
/// simulator knows how to run.
pub enum DriverPlan {
    /// Conventional decoupled frontend; prefetchers (if any) observe
    /// L1i events through [`InstrPrefetcher`].
    Decoupled(Option<Box<dyn InstrPrefetcher>>),
    /// BTB-directed frontend: the engine runs ahead of fetch, filling
    /// the FTQ.
    Directed(Box<dyn DiscoveryEngine>),
}

/// A BTB-directed discovery engine (Boomerang, Shotgun): runs ahead of
/// fetch filling the FTQ, and is steered by redirects when fetch
/// catches it on the wrong path.
pub trait DiscoveryEngine {
    /// One discovery step: follow the BTB/predictors ahead of fetch,
    /// pushing regions into `ftq` and issuing prefetches through `ctx`.
    fn advance(&mut self, ctx: &mut dyn crate::RunaheadContext, ftq: &mut Ftq);

    /// Squash: restart discovery at `pc`, clearing `ftq`.
    fn redirect(&mut self, pc: Addr, ftq: &mut Ftq);

    /// Observes a retired instruction (retire-side BTB learning).
    fn on_retire(&mut self, i: &Instr);

    /// Whether discovery is parked on an unresolvable branch (e.g. an
    /// unknown indirect target) and cannot make progress alone.
    fn is_parked(&self) -> bool;

    /// The block whose arrival discovery is stalled on, if any.
    fn stalled_block(&self) -> Option<Block>;

    /// Total metadata storage in bits (Table II accounting).
    fn storage_bits(&self) -> u64;

    /// Shotgun's split-BTB and engine statistics; `None` for engines
    /// without a split BTB.
    fn shotgun_split_stats(&self) -> Option<(ShotgunBtbStats, crate::shotgun::ShotgunStats)> {
        None
    }

    /// Resets split-BTB statistics at the start of the measurement
    /// window (no-op for engines without them).
    fn reset_btb_stats(&mut self) {}
}

impl DiscoveryEngine for Boomerang {
    fn advance(&mut self, ctx: &mut dyn crate::RunaheadContext, ftq: &mut Ftq) {
        Boomerang::advance(self, ctx, ftq);
    }

    fn redirect(&mut self, pc: Addr, ftq: &mut Ftq) {
        Boomerang::redirect(self, pc, ftq);
    }

    fn on_retire(&mut self, i: &Instr) {
        Boomerang::on_retire(self, i);
    }

    fn is_parked(&self) -> bool {
        Boomerang::is_parked(self)
    }

    fn stalled_block(&self) -> Option<Block> {
        Boomerang::stalled_block(self)
    }

    fn storage_bits(&self) -> u64 {
        Boomerang::storage_bits(self)
    }
}

impl DiscoveryEngine for Shotgun {
    fn advance(&mut self, ctx: &mut dyn crate::RunaheadContext, ftq: &mut Ftq) {
        Shotgun::advance(self, ctx, ftq);
    }

    fn redirect(&mut self, pc: Addr, ftq: &mut Ftq) {
        Shotgun::redirect(self, pc, ftq);
    }

    fn on_retire(&mut self, i: &Instr) {
        Shotgun::on_retire(self, i);
    }

    fn is_parked(&self) -> bool {
        Shotgun::is_parked(self)
    }

    fn stalled_block(&self) -> Option<Block> {
        Shotgun::stalled_block(self)
    }

    fn storage_bits(&self) -> u64 {
        Shotgun::storage_bits(self)
    }

    fn shotgun_split_stats(&self) -> Option<(ShotgunBtbStats, crate::shotgun::ShotgunStats)> {
        Some((self.btb_stats(), self.stats()))
    }

    fn reset_btb_stats(&mut self) {
        Shotgun::reset_btb_stats(self);
    }
}

/// One registry row: a named method and how to configure it.
pub struct MethodRow {
    /// The paper-facing method name (`"SN4L+Dis+BTB"`, `"Shotgun"`, …).
    pub name: &'static str,
    /// Whether Fig. 16 compares this method.
    pub fig16: bool,
    kind: fn() -> PrefetcherKind,
    btb: Option<fn() -> BtbConfig>,
}

impl MethodRow {
    /// Builds this row's prefetcher configuration.
    pub fn kind(&self) -> PrefetcherKind {
        (self.kind)()
    }

    /// The BTB configuration this method requires, when it deviates
    /// from the Table III baseline (Confluence's 16 K-entry BTB).
    pub fn btb_override(&self) -> Option<BtbConfig> {
        self.btb.map(|f| f())
    }
}

fn sn4l_paper() -> PrefetcherKind {
    PrefetcherKind::Sn4l {
        seq_entries: 16 * 1024,
    }
}

fn dis_paper() -> PrefetcherKind {
    PrefetcherKind::Dis {
        dis_entries: 4 * 1024,
        tag: TagPolicy::Partial(4),
    }
}

/// The method registry, in canonical presentation order (§VI-D names
/// first, registered compositions after).
pub fn registry() -> &'static [MethodRow] {
    static ROWS: &[MethodRow] = &[
        MethodRow {
            name: "Baseline",
            fig16: true,
            kind: || PrefetcherKind::None,
            btb: None,
        },
        MethodRow {
            name: "NL",
            fig16: false,
            kind: || PrefetcherKind::NextLine(1),
            btb: None,
        },
        MethodRow {
            name: "N2L",
            fig16: false,
            kind: || PrefetcherKind::NextLine(2),
            btb: None,
        },
        MethodRow {
            name: "N4L",
            fig16: false,
            kind: || PrefetcherKind::NextLine(4),
            btb: None,
        },
        MethodRow {
            name: "N8L",
            fig16: false,
            kind: || PrefetcherKind::NextLine(8),
            btb: None,
        },
        MethodRow {
            name: "SN4L",
            fig16: false,
            kind: sn4l_paper,
            btb: None,
        },
        MethodRow {
            name: "Dis",
            fig16: false,
            kind: dis_paper,
            btb: None,
        },
        MethodRow {
            name: "SN4L+Dis",
            fig16: false,
            kind: || PrefetcherKind::Sn4lDis(Sn4lDisConfig::without_btb()),
            btb: None,
        },
        MethodRow {
            name: "SN4L+Dis+BTB",
            fig16: true,
            kind: || PrefetcherKind::Sn4lDis(Sn4lDisConfig::default()),
            btb: None,
        },
        MethodRow {
            name: "Discontinuity",
            fig16: false,
            kind: || PrefetcherKind::Discontinuity,
            btb: None,
        },
        MethodRow {
            name: "Confluence",
            fig16: true,
            kind: || PrefetcherKind::Confluence(ConfluenceConfig::default()),
            btb: Some(BtbConfig::confluence_16k),
        },
        MethodRow {
            name: "Boomerang",
            fig16: false,
            kind: || PrefetcherKind::Boomerang { btb_entries: 2048 },
            btb: None,
        },
        MethodRow {
            name: "Shotgun",
            fig16: true,
            kind: || PrefetcherKind::Shotgun(ShotgunBtbConfig::default()),
            btb: None,
        },
        MethodRow {
            name: "N2L+Dis",
            fig16: false,
            kind: || PrefetcherKind::Composed {
                label: "N2L+Dis",
                parts: vec![PrefetcherKind::NextLine(2), dis_paper()],
            },
            btb: None,
        },
        MethodRow {
            name: "SN4L+Discontinuity",
            fig16: false,
            kind: || PrefetcherKind::Composed {
                label: "SN4L+Discontinuity",
                parts: vec![sn4l_paper(), PrefetcherKind::Discontinuity],
            },
            btb: None,
        },
    ];
    ROWS
}

/// Looks up a registry row by method name.
pub fn find_method(name: &str) -> Option<&'static MethodRow> {
    registry().iter().find(|r| r.name == name)
}

/// Every registered method name, in registry order.
pub fn method_names() -> impl Iterator<Item = &'static str> {
    registry().iter().map(|r| r.name)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for row in registry() {
            assert!(seen.insert(row.name), "duplicate registry row {}", row.name);
            // name -> config -> label -> same name, for every row.
            assert_eq!(
                row.kind().name(),
                row.name,
                "label mismatch for {}",
                row.name
            );
        }
    }

    #[test]
    fn fixed_names_do_not_allocate() {
        for row in registry() {
            assert!(
                matches!(row.kind().name(), Cow::Borrowed(_)),
                "{} should have a borrowed label",
                row.name
            );
        }
        // Unregistered degrees still format.
        assert_eq!(PrefetcherKind::NextLine(16).name(), "N16L");
    }

    #[test]
    fn build_shapes_match_direction() {
        for row in registry() {
            let kind = row.kind();
            match kind.build(IsaMode::Fixed4, 0x1000) {
                DriverPlan::Decoupled(_) => assert!(!kind.is_btb_directed(), "{}", row.name),
                DriverPlan::Directed(_) => assert!(kind.is_btb_directed(), "{}", row.name),
            }
        }
    }

    #[test]
    fn compositions_build_every_part() {
        let row = find_method("N2L+Dis").expect("registered");
        let DriverPlan::Decoupled(Some(pf)) = row.kind().build(IsaMode::Fixed4, 0) else {
            panic!("composition must build a conventional prefetcher");
        };
        // Storage is the sum of the parts (N2L itself is stateless).
        let dis_bits = match dis_paper().build(IsaMode::Fixed4, 0) {
            DriverPlan::Decoupled(Some(d)) => d.storage_bits(),
            _ => unreachable!("Dis is decoupled"),
        };
        assert_eq!(pf.storage_bits(), dis_bits);
        assert_eq!(pf.name(), "N2L+Dis");
    }

    #[test]
    fn unknown_method_misses() {
        assert!(find_method("bogus").is_none());
        assert!(method_names().count() >= 15);
    }
}
