//! Next-line / next-X-line sequential prefetchers (the §IV baselines).

use crate::context::{InstrPrefetcher, PrefetchContext, RecentInstrs};
use dcfb_telemetry::PfSource;
use dcfb_trace::Block;

/// An NXL prefetcher: on every demand access to a block, prefetch the
/// next `depth` sequential blocks that are not already present.
///
/// `NextLine::new(1)` is the classic NL prefetcher of commercial
/// processors [8]; depths 2/4/8 are the N2L/N4L/N8L points of Fig. 4
/// and Fig. 5.
#[derive(Clone, Debug)]
pub struct NextLine {
    depth: u32,
    issued: u64,
}

impl NextLine {
    /// Creates an NXL prefetcher with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: u32) -> Self {
        assert!(depth > 0, "prefetch depth must be non-zero");
        NextLine { depth, issued: 0 }
    }

    /// The configured depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl InstrPrefetcher for NextLine {
    fn name(&self) -> String {
        match self.depth {
            1 => "NL".to_owned(),
            d => format!("N{d}L"),
        }
    }

    fn storage_bits(&self) -> u64 {
        0 // stateless
    }

    fn on_demand(
        &mut self,
        ctx: &mut dyn PrefetchContext,
        block: Block,
        _hit: bool,
        _hit_was_prefetched: bool,
        _recent: &RecentInstrs,
    ) {
        for d in 1..=u64::from(self.depth) {
            let cand = block + d;
            if !ctx.l1i_lookup(cand) {
                ctx.issue_prefetch(cand, PfSource::NextLine, 0);
                self.issued += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MockContext;

    #[test]
    fn nl_prefetches_single_successor() {
        let mut p = NextLine::new(1);
        let mut ctx = MockContext::default();
        p.on_demand(&mut ctx, 10, true, false, &RecentInstrs::default());
        assert_eq!(ctx.issued, vec![(11, 0)]);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn n4l_prefetches_four() {
        let mut p = NextLine::new(4);
        let mut ctx = MockContext::default();
        p.on_demand(&mut ctx, 100, false, false, &RecentInstrs::default());
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert_eq!(blocks, vec![101, 102, 103, 104]);
    }

    #[test]
    fn resident_blocks_are_skipped() {
        let mut p = NextLine::new(4);
        let mut ctx = MockContext::default();
        ctx.resident.insert(101);
        ctx.resident.insert(103);
        p.on_demand(&mut ctx, 100, true, false, &RecentInstrs::default());
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert_eq!(blocks, vec![102, 104]);
        // All four candidates consumed a cache lookup.
        assert_eq!(ctx.lookups, vec![101, 102, 103, 104]);
    }

    #[test]
    fn names_follow_convention() {
        assert_eq!(NextLine::new(1).name(), "NL");
        assert_eq!(NextLine::new(8).name(), "N8L");
        assert_eq!(NextLine::new(1).storage_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_depth_panics() {
        let _ = NextLine::new(0);
    }
}
