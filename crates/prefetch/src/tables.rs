//! The paper's metadata tables: SeqTable, DisTable, and the RLU filter.

use dcfb_trace::Block;

/// SN4L's sequential-prefetch status table (§V-A): direct-mapped,
/// tagless, one bit per entry, all entries initialized to 1 ("all
/// blocks should be prefetched the first time").
///
/// The paper's configuration is 16 K entries = 2 KB of storage.
#[derive(Clone, Debug)]
pub struct SeqTable {
    bits: Vec<bool>,
    conflict_mask: u64,
}

impl SeqTable {
    /// Creates a table with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "SeqTable entries must be 2^n");
        SeqTable {
            bits: vec![true; entries],
            conflict_mask: (entries - 1) as u64,
        }
    }

    /// The paper's 16 K-entry configuration.
    pub fn paper_sized() -> Self {
        SeqTable::new(16 * 1024)
    }

    /// An effectively unlimited table (one entry per block) for the
    /// Fig. 11 reference point.
    pub fn unlimited() -> Self {
        SeqTable::new(1 << 24)
    }

    #[inline]
    fn index(&self, block: Block) -> usize {
        (block & self.conflict_mask) as usize
    }

    /// Whether `block` is currently predicted useful to prefetch.
    #[inline]
    pub fn is_useful(&self, block: Block) -> bool {
        self.bits[self.index(block)]
    }

    /// Marks `block` as a useful prefetch.
    #[inline]
    pub fn set(&mut self, block: Block) {
        let i = self.index(block);
        self.bits[i] = true;
    }

    /// Marks `block` as a useless prefetch.
    #[inline]
    pub fn reset(&mut self, block: Block) {
        let i = self.index(block);
        self.bits[i] = false;
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.bits.len()
    }

    /// Storage cost in bits (1 bit/entry, tagless).
    pub fn storage_bits(&self) -> u64 {
        self.bits.len() as u64
    }
}

/// Tagging policy for the [`DisTable`] (Fig. 12 compares all three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagPolicy {
    /// No tag: any block mapping to the entry matches.
    Tagless,
    /// A partial tag of the given width (the paper uses 4 bits).
    Partial(u32),
    /// The full block address is stored.
    Full,
}

impl TagPolicy {
    fn tag_of(self, block: Block, index_bits: u32) -> u64 {
        let above = block >> index_bits;
        match self {
            TagPolicy::Tagless => 0,
            TagPolicy::Partial(bits) => above & ((1 << bits) - 1),
            TagPolicy::Full => above,
        }
    }

    fn bits(self) -> u64 {
        match self {
            TagPolicy::Tagless => 0,
            TagPolicy::Partial(b) => u64::from(b),
            // Representative full-tag cost for a 48-bit address space.
            TagPolicy::Full => 32,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct DisEntry {
    valid: bool,
    tag: u64,
    offset: u8,
}

/// The Dis prefetcher's discontinuity table (§V-B): direct-mapped,
/// partially-tagged; each entry stores only the *offset of the branch
/// instruction* that caused a discontinuity in the indexed block.
///
/// The paper's configuration is 4 K entries × (4-bit tag + 4-bit
/// offset) = 4 KB... precisely 4 K × 8 bits = 4 KB as reported in
/// §VI-D3.
#[derive(Clone, Debug)]
pub struct DisTable {
    entries: Vec<DisEntry>,
    policy: TagPolicy,
    index_bits: u32,
    offset_bits: u32,
    hits: u64,
    false_hits_possible: u64,
}

impl DisTable {
    /// Creates a table with `entries` slots (power of two) and the given
    /// tagging policy. `offset_bits` is 4 for a fixed-length ISA
    /// (instruction offset) and 6 for a variable-length ISA (byte
    /// offset), per §V-D.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `offset_bits` is not
    /// 4 or 6.
    pub fn new(entries: usize, policy: TagPolicy, offset_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "DisTable entries must be 2^n");
        assert!(
            offset_bits == 4 || offset_bits == 6,
            "offset_bits must be 4 (fixed ISA) or 6 (variable ISA)"
        );
        DisTable {
            entries: vec![
                DisEntry {
                    valid: false,
                    tag: 0,
                    offset: 0
                };
                entries
            ],
            policy,
            index_bits: entries.trailing_zeros(),
            offset_bits,
            hits: 0,
            false_hits_possible: 0,
        }
    }

    /// The paper's 4 K-entry, 4-bit partially-tagged configuration for
    /// a fixed-length ISA.
    pub fn paper_sized() -> Self {
        DisTable::new(4 * 1024, TagPolicy::Partial(4), 4)
    }

    /// An effectively unlimited, fully-tagged table (Fig. 11/12
    /// reference).
    pub fn unlimited() -> Self {
        DisTable::new(1 << 22, TagPolicy::Full, 4)
    }

    #[inline]
    fn index(&self, block: Block) -> usize {
        (block & ((1u64 << self.index_bits) - 1)) as usize
    }

    /// Records that the branch at `offset` within `block` caused a
    /// discontinuity. For a fixed-length ISA `offset` is the
    /// instruction slot (0–15); for variable-length, the byte offset
    /// (0–63).
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in the configured offset width.
    pub fn record(&mut self, block: Block, offset: u8) {
        assert!(
            u32::from(offset) < (1 << self.offset_bits),
            "offset {offset} out of range"
        );
        let i = self.index(block);
        self.entries[i] = DisEntry {
            valid: true,
            tag: self.policy.tag_of(block, self.index_bits),
            offset,
        };
    }

    /// Looks up the recorded discontinuity offset for `block`.
    pub fn lookup(&mut self, block: Block) -> Option<u8> {
        let i = self.index(block);
        let e = self.entries[i];
        if !e.valid {
            return None;
        }
        if e.tag == self.policy.tag_of(block, self.index_bits) {
            self.hits += 1;
            if matches!(self.policy, TagPolicy::Tagless) {
                self.false_hits_possible += 1;
            }
            Some(e.offset)
        } else {
            None
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Width of the stored offset: 4 (instruction slot, fixed-length
    /// ISA) or 6 (byte offset, variable-length ISA).
    pub fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    /// Storage cost in bits: entries × (tag + offset).
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * (self.policy.bits() + u64::from(self.offset_bits))
    }

    /// The tagging policy.
    pub fn policy(&self) -> TagPolicy {
        self.policy
    }
}

/// The Recently-Looked-Up (RLU) filter (§V-B): the addresses of the
/// last eight blocks looked up by the prefetcher or demanded by the
/// processor. A hit means "do not look up the cache again".
#[derive(Clone, Debug)]
pub struct Rlu {
    entries: Vec<Block>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Rlu {
    /// Creates an RLU of `capacity` blocks (the paper uses 8).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RLU capacity must be non-zero");
        Rlu {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Checks `block` and records it (FIFO replacement). Returns `true`
    /// if the block was recently looked up (caller should skip the
    /// cache lookup).
    pub fn check_insert(&mut self, block: Block) -> bool {
        if self.entries.contains(&block) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(block);
        false
    }

    /// Notes a processor demand for `block` (demands also populate the
    /// RLU per §V-B).
    pub fn note_demand(&mut self, block: Block) {
        if !self.entries.contains(&block) {
            if self.entries.len() == self.capacity {
                self.entries.remove(0);
            }
            self.entries.push(block);
        }
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Filter rate: fraction of checks absorbed by the RLU.
    pub fn filter_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqtable_initialized_to_useful() {
        let t = SeqTable::new(16);
        for b in 0..100u64 {
            assert!(t.is_useful(b));
        }
    }

    #[test]
    fn seqtable_set_reset_aliasing() {
        let mut t = SeqTable::new(16);
        t.reset(3);
        assert!(!t.is_useful(3));
        // Aliased block shares the entry (tagless, direct-mapped).
        assert!(!t.is_useful(3 + 16));
        t.set(3 + 16);
        assert!(t.is_useful(3));
    }

    #[test]
    fn seqtable_storage() {
        assert_eq!(SeqTable::paper_sized().storage_bits(), 16 * 1024);
        assert_eq!(SeqTable::paper_sized().entries(), 16 * 1024);
    }

    #[test]
    fn distable_record_lookup() {
        let mut t = DisTable::paper_sized();
        assert_eq!(t.lookup(100), None);
        t.record(100, 9);
        assert_eq!(t.lookup(100), Some(9));
    }

    #[test]
    fn distable_partial_tag_rejects_most_aliases() {
        let mut t = DisTable::new(16, TagPolicy::Partial(4), 4);
        t.record(5, 3);
        // Same index (5 + 16) but different partial tag (tag = 1).
        assert_eq!(t.lookup(5 + 16), None);
        // Same index and same partial tag: 5 + 16*16 -> tag bits wrap.
        assert_eq!(t.lookup(5 + 16 * 16), Some(3));
    }

    #[test]
    fn distable_tagless_accepts_all_aliases() {
        let mut t = DisTable::new(16, TagPolicy::Tagless, 4);
        t.record(5, 3);
        assert_eq!(t.lookup(5 + 16), Some(3));
        assert_eq!(t.lookup(5 + 32), Some(3));
    }

    #[test]
    fn distable_full_tag_rejects_all_aliases() {
        let mut t = DisTable::new(16, TagPolicy::Full, 4);
        t.record(5, 3);
        assert_eq!(t.lookup(5 + 16), None);
        assert_eq!(t.lookup(5 + 16 * 16), None);
        assert_eq!(t.lookup(5), Some(3));
    }

    #[test]
    fn distable_storage_costs() {
        // Paper: 4 K x (4-bit tag + 4-bit offset) = 4 KB.
        assert_eq!(DisTable::paper_sized().storage_bits(), 4 * 1024 * 8);
        // VL-ISA: 6-bit byte offset -> 10 bits/entry (+20 %, §V-D).
        let vl = DisTable::new(4 * 1024, TagPolicy::Partial(4), 6);
        assert_eq!(vl.storage_bits(), 4 * 1024 * 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn distable_offset_range_checked() {
        let mut t = DisTable::paper_sized();
        t.record(0, 16);
    }

    #[test]
    fn distable_overwrite_updates_offset() {
        let mut t = DisTable::paper_sized();
        t.record(7, 2);
        t.record(7, 11);
        assert_eq!(t.lookup(7), Some(11));
    }

    #[test]
    fn rlu_filters_repeats() {
        let mut r = Rlu::new(8);
        assert!(!r.check_insert(1));
        assert!(r.check_insert(1));
        assert_eq!(r.counters(), (1, 1));
        assert!((r.filter_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rlu_fifo_capacity() {
        let mut r = Rlu::new(2);
        r.check_insert(1);
        r.check_insert(2);
        r.check_insert(3); // evicts 1
        assert!(!r.check_insert(1), "1 must have been evicted");
    }

    #[test]
    fn rlu_demands_populate() {
        let mut r = Rlu::new(4);
        r.note_demand(9);
        assert!(r.check_insert(9));
    }
}
