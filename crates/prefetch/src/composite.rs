//! Composing conventional prefetchers.
//!
//! A [`Composite`] bundles several L1i-event-driven prefetchers behind
//! one [`InstrPrefetcher`]: every part observes the same demand, fill,
//! evict, and tick stream (in registration order) and issues into the
//! same memory hierarchy, so a registry row like `N2L+Dis` is purely a
//! configuration — no engine changes needed.

use crate::context::{InstrPrefetcher, PrefetchContext, RecentInstrs};
use dcfb_trace::Block;

/// Several [`InstrPrefetcher`]s driven by one event stream.
///
/// Hooks fan out to the parts in order; storage sums over them; the RLU
/// counters (a proactive-engine diagnostic) come from the first part
/// that reports any.
pub struct Composite {
    label: &'static str,
    parts: Vec<Box<dyn InstrPrefetcher>>,
}

impl Composite {
    /// Bundles `parts` under a display `label`.
    pub fn new(label: &'static str, parts: Vec<Box<dyn InstrPrefetcher>>) -> Self {
        Composite { label, parts }
    }
}

impl InstrPrefetcher for Composite {
    fn name(&self) -> String {
        self.label.to_owned()
    }

    fn storage_bits(&self) -> u64 {
        self.parts.iter().map(|p| p.storage_bits()).sum()
    }

    fn on_demand(
        &mut self,
        ctx: &mut dyn PrefetchContext,
        block: Block,
        hit: bool,
        hit_was_prefetched: bool,
        recent: &RecentInstrs,
    ) {
        for p in &mut self.parts {
            p.on_demand(ctx, block, hit, hit_was_prefetched, recent);
        }
    }

    fn on_fill(&mut self, ctx: &mut dyn PrefetchContext, block: Block, was_prefetch: bool) {
        for p in &mut self.parts {
            p.on_fill(ctx, block, was_prefetch);
        }
    }

    fn on_evict(&mut self, ctx: &mut dyn PrefetchContext, block: Block, useless_prefetch: bool) {
        for p in &mut self.parts {
            p.on_evict(ctx, block, useless_prefetch);
        }
    }

    fn tick(&mut self, ctx: &mut dyn PrefetchContext) {
        for p in &mut self.parts {
            p.tick(ctx);
        }
    }

    fn rlu_counters(&self) -> Option<(u64, u64)> {
        self.parts.iter().find_map(|p| p.rlu_counters())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::context::MockContext;
    use crate::NextLine;

    #[test]
    fn parts_see_every_event_in_order() {
        // N1L and N2L together: demanding block 10 issues 11 (from
        // both, second is deduped by residency) and 12 (from N2L).
        let mut c = Composite::new(
            "NL+N2L",
            vec![Box::new(NextLine::new(1)), Box::new(NextLine::new(2))],
        );
        let mut ctx = MockContext::default();
        c.on_demand(&mut ctx, 10, false, false, &RecentInstrs::default());
        let blocks: Vec<u64> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert_eq!(blocks, vec![11, 12]);
        assert_eq!(c.name(), "NL+N2L");
        assert_eq!(c.storage_bits(), 0);
        assert!(c.rlu_counters().is_none());
    }
}
