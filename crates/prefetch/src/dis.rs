//! Dis: the lightweight discontinuity prefetcher (§V-B).
//!
//! Dis covers the misses SN4L cannot: those caused by taken branches.
//! Instead of storing target *addresses* (tens of KB in the
//! conventional design), the DisTable records only the intra-block
//! offset of the branch that caused a discontinuity; the target is
//! recovered by pre-decoding the branch when the block is (pre)fetched
//! again.
//!
//! * **Recording** — on every cache miss, the last two demanded
//!   instructions are examined (two because of the SPARC delay slot);
//!   if one is a branch, its offset is recorded under *its own* block.
//! * **Replaying** — on every fetch/prefetch of a block, the DisTable
//!   is consulted; on a (partial-tag) match the instruction at the
//!   stored offset is pre-decoded, and if it is a branch its target
//!   block is prefetched (consulting the BTB for indirect targets).

use crate::context::{InstrPrefetcher, PrefetchContext, RecentInstrs};
use crate::tables::{DisTable, TagPolicy};
use dcfb_telemetry::PfSource;
use dcfb_trace::{block_of, Block};

/// The discontinuity prefetcher.
#[derive(Clone, Debug)]
pub struct Dis {
    table: DisTable,
    /// Extra issue latency charged to Dis prefetches (DisTable lookup +
    /// pre-decode path, §VII-D).
    issue_delay: u64,
    issued: u64,
    records: u64,
    decode_mismatches: u64,
    unresolved_indirects: u64,
}

impl Dis {
    /// Creates Dis with the paper's 4 K-entry, 4-bit partially-tagged
    /// DisTable.
    pub fn paper_sized() -> Self {
        Dis::with_table(DisTable::paper_sized())
    }

    /// Creates Dis over a custom table (size and tagging sweeps,
    /// Fig. 11/12).
    pub fn with_table(table: DisTable) -> Self {
        Dis {
            table,
            issue_delay: 3,
            issued: 0,
            records: 0,
            decode_mismatches: 0,
            unresolved_indirects: 0,
        }
    }

    /// `(issued, recorded, decode_mismatches, unresolved_indirects)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.issued,
            self.records,
            self.decode_mismatches,
            self.unresolved_indirects,
        )
    }

    /// The tagging policy in use.
    pub fn policy(&self) -> TagPolicy {
        self.table.policy()
    }

    /// Records a discontinuity from `recent` (shared with the combined
    /// engine). Returns `true` if something was recorded.
    pub fn record_from_recent(&mut self, recent: &RecentInstrs) -> bool {
        let Some(branch) = recent.last_branch() else {
            return false;
        };
        let offset = match self.offset_mode() {
            OffsetMode::Byte => branch.byte_offset() as u8,
            OffsetMode::Instr => (branch.byte_offset() / 4) as u8,
        };
        self.table.record(block_of(branch.pc), offset);
        self.records += 1;
        true
    }

    /// Computes the discontinuity target recorded for `block` without
    /// issuing a prefetch or touching the cache: DisTable lookup,
    /// pre-decode at the stored offset, BTB consultation for indirect
    /// targets. Used directly by the combined engine, which routes the
    /// candidate through its RLU.
    pub fn peek_target(&mut self, ctx: &mut dyn PrefetchContext, block: Block) -> Option<Block> {
        let offset = self.table.lookup(block)?;
        let byte_offset = match self.offset_mode() {
            OffsetMode::Instr => u32::from(offset) * 4,
            OffsetMode::Byte => u32::from(offset),
        };
        let Some(entry) = ctx.decode_branch_at(block, byte_offset) else {
            // Aliased entry or stale code: the instruction at the offset
            // is not a branch — "we do nothing" (§V-B).
            self.decode_mismatches += 1;
            return None;
        };
        let target = if entry.target != 0 {
            entry.target
        } else {
            match ctx.btb_target(entry.pc) {
                Some(t) => t,
                None => {
                    // "If the instruction is not found in BTB, no
                    // prefetch request will be sent."
                    self.unresolved_indirects += 1;
                    return None;
                }
            }
        };
        Some(block_of(target))
    }

    /// Replays the table for `block`: if a discontinuity branch is
    /// recorded, decode it and prefetch its target. Returns the
    /// prefetched target block, if any.
    pub fn replay(&mut self, ctx: &mut dyn PrefetchContext, block: Block) -> Option<Block> {
        let target_block = self.peek_target(ctx, block)?;
        if !ctx.l1i_lookup(target_block) {
            ctx.issue_prefetch(target_block, PfSource::Dis, self.issue_delay);
            self.issued += 1;
        }
        Some(target_block)
    }

    fn offset_mode(&self) -> OffsetMode {
        // DisTable with 6 offset bits => byte offsets (VL-ISA, §V-D).
        if self.table.offset_bits() == 6 {
            OffsetMode::Byte
        } else {
            OffsetMode::Instr
        }
    }
}

enum OffsetMode {
    Instr,
    Byte,
}

impl InstrPrefetcher for Dis {
    fn name(&self) -> String {
        "Dis".to_owned()
    }

    fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }

    fn on_demand(
        &mut self,
        ctx: &mut dyn PrefetchContext,
        block: Block,
        hit: bool,
        _hit_was_prefetched: bool,
        recent: &RecentInstrs,
    ) {
        if !hit {
            self.record_from_recent(recent);
        }
        // Replay is triggered on every fetch request (§V-B).
        self.replay(ctx, block);
    }

    fn on_fill(&mut self, ctx: &mut dyn PrefetchContext, block: Block, was_prefetch: bool) {
        // Prefetched blocks trigger replay when they arrive.
        if was_prefetch {
            self.replay(ctx, block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MockContext;
    use dcfb_frontend::{BranchClass, BtbEntry};
    use dcfb_trace::{Instr, InstrKind};

    /// Sets up: block 10 contains a jump at byte offset 8 targeting
    /// block 50's base.
    fn ctx_with_branch() -> MockContext {
        let mut ctx = MockContext::default();
        ctx.code.insert(
            10,
            vec![BtbEntry {
                pc: 10 * 64 + 8,
                target: 50 * 64,
                class: BranchClass::Jump,
            }],
        );
        ctx
    }

    fn recent_with_branch() -> RecentInstrs {
        let mut r = RecentInstrs::default();
        r.push(Instr::branch(10 * 64 + 8, 4, InstrKind::Jump, 50 * 64));
        r
    }

    #[test]
    fn record_then_replay_prefetches_target() {
        let mut d = Dis::paper_sized();
        let mut ctx = ctx_with_branch();
        // Miss on block 50 with the jump as the last instruction.
        d.on_demand(&mut ctx, 50, false, false, &recent_with_branch());
        // Re-touching block 10 replays the discontinuity.
        ctx.issued.clear();
        d.on_demand(&mut ctx, 10, true, false, &RecentInstrs::default());
        assert_eq!(ctx.issued, vec![(50, 3)]);
        assert_eq!(d.counters().0, 1);
    }

    #[test]
    fn no_branch_in_recent_records_nothing() {
        let mut d = Dis::paper_sized();
        let mut r = RecentInstrs::default();
        r.push(Instr::other(0x100, 4));
        assert!(!d.record_from_recent(&r));
        assert_eq!(d.counters().1, 0);
    }

    #[test]
    fn decode_mismatch_is_silent() {
        let mut d = Dis::paper_sized();
        let mut ctx = MockContext::default(); // no code at block 10
        d.on_demand(&mut ctx, 50, false, false, &recent_with_branch());
        ctx.issued.clear();
        d.on_demand(&mut ctx, 10, true, false, &RecentInstrs::default());
        assert!(ctx.issued.is_empty());
        assert_eq!(d.counters().2, 1);
    }

    #[test]
    fn indirect_target_resolved_via_btb() {
        let mut d = Dis::paper_sized();
        let mut ctx = MockContext::default();
        let pc = 10 * 64 + 12;
        ctx.code.insert(
            10,
            vec![BtbEntry {
                pc,
                target: 0, // not in encoding
                class: BranchClass::IndirectCall,
            }],
        );
        let mut r = RecentInstrs::default();
        r.push(Instr::branch(pc, 4, InstrKind::IndirectCall, 77 * 64));
        d.on_demand(&mut ctx, 77, false, false, &r);
        ctx.issued.clear();
        // Without a BTB entry: no prefetch.
        d.on_demand(&mut ctx, 10, true, false, &RecentInstrs::default());
        assert!(ctx.issued.is_empty());
        assert_eq!(d.counters().3, 1);
        // With a BTB entry: prefetch follows it.
        ctx.btb.insert(pc, 77 * 64);
        d.on_demand(&mut ctx, 10, true, false, &RecentInstrs::default());
        assert_eq!(ctx.issued, vec![(77, 3)]);
    }

    #[test]
    fn replay_on_prefetch_fill() {
        let mut d = Dis::paper_sized();
        let mut ctx = ctx_with_branch();
        d.on_demand(&mut ctx, 50, false, false, &recent_with_branch());
        ctx.issued.clear();
        ctx.resident.clear();
        // Block 10 arrives as a prefetch: replay fires.
        d.on_fill(&mut ctx, 10, true);
        assert_eq!(ctx.issued, vec![(50, 3)]);
        // Demand fills do not re-trigger replay in the standalone Dis.
        ctx.issued.clear();
        ctx.resident.clear();
        d.on_fill(&mut ctx, 10, false);
        assert!(ctx.issued.is_empty());
    }

    #[test]
    fn resident_target_not_reissued() {
        let mut d = Dis::paper_sized();
        let mut ctx = ctx_with_branch();
        ctx.resident.insert(50);
        d.on_demand(&mut ctx, 50, false, false, &recent_with_branch());
        ctx.issued.clear();
        d.on_demand(&mut ctx, 10, true, false, &RecentInstrs::default());
        assert!(ctx.issued.is_empty());
    }

    #[test]
    fn storage_is_4kb() {
        assert_eq!(Dis::paper_sized().storage_bits(), 4 * 1024 * 8);
        assert_eq!(Dis::paper_sized().name(), "Dis");
    }
}
