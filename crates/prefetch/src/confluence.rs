//! Confluence, modeled as SHIFT temporal streaming plus a 16 K-entry
//! BTB (§VI-D1).
//!
//! SHIFT [21] records the sequence of instruction blocks the core
//! touches into a history buffer (virtualized in the LLC) with an index
//! from block → most recent history position. On a miss, the stream is
//! located in the history and *replayed*: the next several blocks of
//! the recorded sequence are prefetched, and the replay pointer chases
//! the demand stream as long as it keeps matching.
//!
//! The DCFB paper models Confluence's BTB side as a 16 K-entry BTB
//! ("shown to offer an upper bound", §VI-D1) — that part lives in the
//! simulator configuration; this type implements the instruction
//! prefetch engine and its ~200 KB metadata accounting.

use crate::context::{InstrPrefetcher, PrefetchContext, RecentInstrs};
use dcfb_telemetry::PfSource;
use dcfb_trace::Block;
use fxhash::FxHashMap;

/// SHIFT engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfluenceConfig {
    /// History buffer length in blocks (32 K in SHIFT).
    pub history_entries: usize,
    /// Blocks prefetched when a stream is (re)located.
    pub degree: usize,
    /// How far the replay pointer runs ahead of the demand stream.
    pub lookahead: usize,
}

impl Default for ConfluenceConfig {
    fn default() -> Self {
        ConfluenceConfig {
            history_entries: 32 * 1024,
            degree: 8,
            lookahead: 24,
        }
    }
}

/// The SHIFT-style temporal instruction prefetcher.
pub struct Confluence {
    cfg: ConfluenceConfig,
    history: Vec<Block>,
    head: usize,
    filled: bool,
    /// block → most recent history position; FxHash keyed by the
    /// simulator's own block ids (hot on every record/locate).
    index: FxHashMap<Block, usize>,
    last_recorded: Option<Block>,
    /// Active replay pointer into `history` (next position to prefetch).
    replay: Option<usize>,
    /// How many stream blocks the pointer may still run ahead.
    credits: usize,
    issued: u64,
    stream_hits: u64,
    stream_starts: u64,
}

impl Confluence {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if `history_entries` or `degree` is zero.
    pub fn new(cfg: ConfluenceConfig) -> Self {
        assert!(cfg.history_entries > 0, "history must be non-empty");
        assert!(cfg.degree > 0, "degree must be non-zero");
        Confluence {
            cfg,
            history: vec![0; cfg.history_entries],
            head: 0,
            filled: false,
            index: FxHashMap::default(),
            last_recorded: None,
            replay: None,
            credits: 0,
            issued: 0,
            stream_hits: 0,
            stream_starts: 0,
        }
    }

    /// The paper-scale configuration.
    pub fn paper_sized() -> Self {
        Confluence::new(ConfluenceConfig::default())
    }

    /// `(issued, stream_starts, stream_follow_hits)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.issued, self.stream_starts, self.stream_hits)
    }

    fn record(&mut self, block: Block) {
        if self.last_recorded == Some(block) {
            return;
        }
        self.last_recorded = Some(block);
        self.history[self.head] = block;
        self.index.insert(block, self.head);
        self.head += 1;
        if self.head == self.history.len() {
            self.head = 0;
            self.filled = true;
        }
    }

    fn replay_some(&mut self, ctx: &mut dyn PrefetchContext, n: usize) {
        let len = self.history.len();
        let limit = if self.filled { len } else { self.head };
        if limit == 0 {
            return;
        }
        // The most recently recorded position: replaying into it would
        // "predict" the present, so the stream ends there.
        let newest = (self.head + len - 1) % len;
        let mut issued = 0;
        // Resident blocks are skipped without consuming run-ahead
        // credits; bound the scan so one call stays cheap.
        let mut scanned = 0;
        while issued < n && scanned < 4 * n {
            scanned += 1;
            let Some(pos) = self.replay else { break };
            if pos >= limit || pos == newest {
                self.replay = None;
                break;
            }
            if self.credits == 0 {
                break;
            }
            let block = self.history[pos];
            self.replay = Some((pos + 1) % limit);
            if !ctx.l1i_lookup(block) {
                // Temporal metadata lives in the LLC: charge the two-step
                // LLC pointer-chase with a modest extra delay.
                ctx.issue_prefetch(block, PfSource::Confluence, 4);
                self.issued += 1;
                issued += 1;
                self.credits -= 1;
            }
        }
    }
}

impl InstrPrefetcher for Confluence {
    fn name(&self) -> String {
        "Confluence".to_owned()
    }

    fn storage_bits(&self) -> u64 {
        // History: ~34 bits/block; index modeled as SHIFT's virtualized
        // LLC pointers (~16 bits per entry over a 16 K-entry bucketed
        // index). Totals ≈ 170 KB: the "200 KB metadata virtualized in
        // LLC" row of Table II.
        (self.history.len() as u64 * 34) + (16 * 1024 * 16)
    }

    fn on_demand(
        &mut self,
        ctx: &mut dyn PrefetchContext,
        block: Block,
        hit: bool,
        _hit_was_prefetched: bool,
        _recent: &RecentInstrs,
    ) {
        // Locate the previous occurrence BEFORE recording this one, then
        // record the access stream (PIF/SHIFT record accesses, not
        // misses).
        let prev_pos = if hit {
            None
        } else {
            self.index.get(&block).copied()
        };
        self.record(block);
        if !hit {
            // Locate the stream at the missed block and start replaying
            // ahead of it.
            if let Some(pos) = prev_pos {
                let limit = if self.filled {
                    self.history.len()
                } else {
                    self.head
                };
                if limit > 0 {
                    self.replay = Some((pos + 1) % limit);
                    self.credits = self.cfg.lookahead;
                    self.stream_starts += 1;
                    self.replay_some(ctx, self.cfg.degree);
                }
            }
        } else if self.replay.is_some() {
            // Stream following: each demand that keeps the stream alive
            // grants another credit.
            self.stream_hits += 1;
            self.credits = (self.credits + 1).min(self.cfg.lookahead);
            self.replay_some(ctx, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MockContext;

    fn demand(c: &mut Confluence, ctx: &mut MockContext, block: Block, hit: bool) {
        c.on_demand(ctx, block, hit, false, &RecentInstrs::default());
    }

    fn small() -> Confluence {
        Confluence::new(ConfluenceConfig {
            history_entries: 256,
            degree: 4,
            lookahead: 8,
        })
    }

    #[test]
    fn learns_and_replays_a_temporal_stream() {
        let mut c = small();
        let mut ctx = MockContext::default();
        let stream = [10u64, 11, 40, 41, 90, 91, 13, 200];
        // First pass: record (all misses, no predictions yet).
        for &b in &stream {
            demand(&mut c, &mut ctx, b, false);
        }
        ctx.issued.clear();
        ctx.resident.clear();
        // Second pass: miss on the stream head replays the successors.
        demand(&mut c, &mut ctx, 10, false);
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert_eq!(blocks, vec![11, 40, 41, 90]);
        assert_eq!(c.counters().1, 1);
    }

    #[test]
    fn stream_following_extends_replay() {
        let mut c = small();
        let mut ctx = MockContext::default();
        let stream: Vec<u64> = (0..20).map(|i| 100 + i * 7).collect();
        for &b in &stream {
            demand(&mut c, &mut ctx, b, false);
        }
        ctx.issued.clear();
        ctx.resident.clear();
        demand(&mut c, &mut ctx, stream[0], false);
        let initial = ctx.issued.len();
        // Following the stream (hits) keeps pulling new blocks.
        demand(&mut c, &mut ctx, stream[1], true);
        demand(&mut c, &mut ctx, stream[2], true);
        assert!(ctx.issued.len() > initial);
        assert!(c.counters().2 >= 2);
    }

    #[test]
    fn unknown_miss_does_nothing() {
        let mut c = small();
        let mut ctx = MockContext::default();
        demand(&mut c, &mut ctx, 999, false);
        assert!(ctx.issued.is_empty());
    }

    #[test]
    fn consecutive_duplicates_not_recorded() {
        let mut c = small();
        let mut ctx = MockContext::default();
        demand(&mut c, &mut ctx, 5, false);
        demand(&mut c, &mut ctx, 5, true);
        demand(&mut c, &mut ctx, 6, false);
        ctx.issued.clear();
        ctx.resident.clear();
        demand(&mut c, &mut ctx, 5, false);
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert_eq!(blocks, vec![6]);
    }

    #[test]
    fn history_wraps_without_panicking() {
        let mut c = Confluence::new(ConfluenceConfig {
            history_entries: 16,
            degree: 2,
            lookahead: 4,
        });
        let mut ctx = MockContext::default();
        for i in 0..100u64 {
            demand(&mut c, &mut ctx, i, false);
        }
        // Most recent entries are intact.
        demand(&mut c, &mut ctx, 98, false);
    }

    #[test]
    fn storage_is_hundreds_of_kb() {
        let c = Confluence::paper_sized();
        let kb = c.storage_bits() / 8 / 1024;
        assert!(kb > 100, "Confluence metadata should be large, got {kb} KB");
    }

    #[test]
    fn prefetches_charged_llc_chase_delay() {
        let mut c = small();
        let mut ctx = MockContext::default();
        demand(&mut c, &mut ctx, 1, false);
        demand(&mut c, &mut ctx, 2, false);
        ctx.issued.clear();
        ctx.resident.clear();
        demand(&mut c, &mut ctx, 1, false);
        assert!(ctx.issued.iter().all(|&(_, d)| d == 4));
    }
}
