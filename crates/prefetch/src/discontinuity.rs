//! The conventional discontinuity prefetcher (Spracklen et al. [17]).
//!
//! The baseline design the paper improves upon: a tagless, direct-mapped
//! table that maps a trigger block to the *full address* of the
//! discontinuous successor block observed after it. Compared to Dis it
//! (1) stores whole addresses (tens of KB), (2) suffers useless
//! prefetches from tagless aliasing, and (3) has no lookahead beyond
//! one discontinuity (§I, shortcomings list).

use crate::context::{InstrPrefetcher, PrefetchContext, RecentInstrs};
use dcfb_telemetry::PfSource;
use dcfb_trace::Block;

#[derive(Clone, Copy, Debug)]
struct Entry {
    valid: bool,
    successor: Block,
}

/// The conventional discontinuity prefetcher.
#[derive(Clone, Debug)]
pub struct DiscontinuityPrefetcher {
    table: Vec<Entry>,
    last_block: Option<Block>,
    issued: u64,
    records: u64,
}

impl DiscontinuityPrefetcher {
    /// Creates a prefetcher with `entries` table slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        DiscontinuityPrefetcher {
            table: vec![
                Entry {
                    valid: false,
                    successor: 0
                };
                entries
            ],
            last_block: None,
            issued: 0,
            records: 0,
        }
    }

    /// A representative configuration: 4 K entries of full block
    /// addresses.
    pub fn paper_baseline() -> Self {
        DiscontinuityPrefetcher::new(4 * 1024)
    }

    fn index(&self, block: Block) -> usize {
        (block as usize) & (self.table.len() - 1)
    }

    /// `(issued, recorded)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.issued, self.records)
    }
}

impl InstrPrefetcher for DiscontinuityPrefetcher {
    fn name(&self) -> String {
        "Discontinuity".to_owned()
    }

    fn storage_bits(&self) -> u64 {
        // Full block address per entry (~34 bits for a 40-bit space).
        self.table.len() as u64 * 34
    }

    fn on_demand(
        &mut self,
        ctx: &mut dyn PrefetchContext,
        block: Block,
        hit: bool,
        _hit_was_prefetched: bool,
        recent: &RecentInstrs,
    ) {
        // Record: a miss on a block that is NOT sequential after the
        // previous one (the next-line prefetcher would capture that).
        if let Some(prev) = self.last_block {
            let sequential = block == prev || block == prev + 1;
            if !hit && !sequential {
                // Attribute to a branch if one is visible (fidelity to
                // [17]: any non-sequential miss is recorded).
                let _ = recent;
                let i = self.index(prev);
                self.table[i] = Entry {
                    valid: true,
                    successor: block,
                };
                self.records += 1;
            }
        }
        if self.last_block != Some(block) {
            self.last_block = Some(block);
        }
        // Replay: prefetch the recorded successor of this block.
        let i = self.index(block);
        let e = self.table[i];
        if e.valid && e.successor != block {
            if !ctx.l1i_lookup(e.successor) {
                ctx.issue_prefetch(e.successor, PfSource::Discontinuity, 0);
                self.issued += 1;
            }
            // Cover the successor's sequential neighbour too (the
            // standard pairing with an NL prefetcher).
            let seq = e.successor + 1;
            if !ctx.l1i_lookup(seq) {
                ctx.issue_prefetch(seq, PfSource::Discontinuity, 0);
                self.issued += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MockContext;

    fn demand(p: &mut DiscontinuityPrefetcher, ctx: &mut MockContext, block: Block, hit: bool) {
        p.on_demand(ctx, block, hit, false, &RecentInstrs::default());
    }

    #[test]
    fn records_discontinuity_and_replays() {
        let mut p = DiscontinuityPrefetcher::new(64);
        let mut ctx = MockContext::default();
        demand(&mut p, &mut ctx, 10, true);
        demand(&mut p, &mut ctx, 50, false); // discontinuity 10 -> 50
        assert_eq!(p.counters().1, 1);
        ctx.issued.clear();
        ctx.resident.clear();
        demand(&mut p, &mut ctx, 10, true); // replay
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert_eq!(blocks, vec![50, 51]);
    }

    #[test]
    fn sequential_misses_not_recorded() {
        let mut p = DiscontinuityPrefetcher::new(64);
        let mut ctx = MockContext::default();
        demand(&mut p, &mut ctx, 10, true);
        demand(&mut p, &mut ctx, 11, false); // sequential miss
        assert_eq!(p.counters().1, 0);
    }

    #[test]
    fn hits_not_recorded() {
        let mut p = DiscontinuityPrefetcher::new(64);
        let mut ctx = MockContext::default();
        demand(&mut p, &mut ctx, 10, true);
        demand(&mut p, &mut ctx, 50, true); // discontinuity but a hit
        assert_eq!(p.counters().1, 0);
    }

    #[test]
    fn tagless_aliasing_mispredicts() {
        let mut p = DiscontinuityPrefetcher::new(16);
        let mut ctx = MockContext::default();
        demand(&mut p, &mut ctx, 3, true);
        demand(&mut p, &mut ctx, 50, false); // 3 -> 50 recorded
        ctx.issued.clear();
        ctx.resident.clear();
        // Block 3+16 aliases to the same entry: useless prefetch of 50.
        demand(&mut p, &mut ctx, 3 + 16, true);
        assert!(ctx.issued.iter().any(|&(b, _)| b == 50));
    }

    #[test]
    fn storage_is_tens_of_kb() {
        let p = DiscontinuityPrefetcher::paper_baseline();
        let kb = p.storage_bits() / 8 / 1024;
        assert!(kb >= 16, "conventional table should be ≥16 KB, got {kb}");
    }
}
