//! The prefetcher ↔ machine interface.
//!
//! Prefetchers never touch the cache, BTB, or memory hierarchy
//! directly; they act through a [`PrefetchContext`] the simulator
//! provides on each call. This keeps every prefetcher a pure state
//! machine over events — easy to unit-test against [`MockContext`].

use dcfb_frontend::BtbEntry;
use dcfb_telemetry::PfSource;
use dcfb_trace::{Addr, Block, Instr};
use std::sync::Arc;

/// The machine surface a prefetcher may use.
pub trait PrefetchContext {
    /// Current simulation cycle.
    fn cycle(&self) -> u64;

    /// Probes the L1i (and MSHRs) for `block`. Counts one cache lookup
    /// — the quantity Fig. 14 reports. Returns `true` if the block is
    /// resident or already in flight.
    fn l1i_lookup(&mut self, block: Block) -> bool;

    /// Issues a prefetch for `block` into the memory hierarchy.
    /// `source` identifies the issuing component for telemetry
    /// attribution; `extra_delay` models a longer issue path (the Dis
    /// prefetcher's DisTable-lookup + pre-decode pipeline, §VII-D).
    fn issue_prefetch(&mut self, block: Block, source: PfSource, extra_delay: u64);

    /// Pre-decodes `block`, returning every branch found. In hardware
    /// this requires the block's bytes (resident or just arrived); the
    /// simulator enforces availability. The result is a shared slice so
    /// the machine can serve repeat decodes of a static block from a
    /// per-block cache instead of re-allocating.
    fn predecode(&mut self, block: Block) -> Arc<[BtbEntry]>;

    /// Pre-decodes only the instruction at `byte_offset` of `block`
    /// (the Dis replay path). Returns `None` if it is not a branch.
    fn decode_branch_at(&mut self, block: Block, byte_offset: u32) -> Option<BtbEntry>;

    /// Consults the core BTB for the target of the branch at `pc`
    /// (used when the target is not in the instruction encoding).
    /// Does not disturb BTB statistics.
    fn btb_target(&mut self, pc: Addr) -> Option<Addr>;

    /// Deposits pre-decoded branches into the BTB prefetch buffer. The
    /// shared slice from [`PrefetchContext::predecode`] is stored as-is
    /// (no per-event copy of the branch set).
    fn fill_btb_buffer(&mut self, block: Block, branches: Arc<[BtbEntry]>);
}

/// The last two demanded instructions, which the Dis prefetcher decodes
/// on every cache miss (the paper keeps two because of the SPARC branch
/// delay slot, §V-B).
#[derive(Clone, Copy, Debug, Default)]
pub struct RecentInstrs {
    /// The most recently demanded instruction.
    pub last: Option<Instr>,
    /// The instruction before it.
    pub prev: Option<Instr>,
}

impl RecentInstrs {
    /// Shifts in a newly demanded instruction.
    pub fn push(&mut self, i: Instr) {
        self.prev = self.last;
        self.last = Some(i);
    }

    /// The most recent *branch* among the tracked instructions.
    pub fn last_branch(&self) -> Option<Instr> {
        [self.last, self.prev]
            .into_iter()
            .flatten()
            .find(|i| i.kind.is_branch())
    }
}

/// An L1i-event-driven instruction prefetcher.
///
/// All hooks default to no-ops so each prefetcher implements only what
/// it observes.
pub trait InstrPrefetcher {
    /// Display name (used by the experiment harness).
    fn name(&self) -> String;

    /// Total metadata storage in bits (Table II accounting).
    fn storage_bits(&self) -> u64;

    /// A demand access to `block` resolved as `hit`;
    /// `hit_was_prefetched` is set when the hit line still carried its
    /// prefetch flag. `recent` holds the last two demanded instructions.
    fn on_demand(
        &mut self,
        ctx: &mut dyn PrefetchContext,
        block: Block,
        hit: bool,
        hit_was_prefetched: bool,
        recent: &RecentInstrs,
    ) {
        let _ = (ctx, block, hit, hit_was_prefetched, recent);
    }

    /// `block` arrived in the L1i (`was_prefetch` distinguishes
    /// prefetch fills from demand fills).
    fn on_fill(&mut self, ctx: &mut dyn PrefetchContext, block: Block, was_prefetch: bool) {
        let _ = (ctx, block, was_prefetch);
    }

    /// `block` left the L1i; `useless_prefetch` is set when it was
    /// prefetched and never demanded.
    fn on_evict(&mut self, ctx: &mut dyn PrefetchContext, block: Block, useless_prefetch: bool) {
        let _ = (ctx, block, useless_prefetch);
    }

    /// Called once per cycle so queue-driven engines can pump their
    /// internal pipelines.
    fn tick(&mut self, ctx: &mut dyn PrefetchContext) {
        let _ = ctx;
    }

    /// `(lookups, hits)` of the prefetcher's record-lookup unit, if it
    /// has one. Telemetry samples this each window to build the RLU
    /// hit-rate series; prefetchers without an RLU keep the default
    /// `None`.
    fn rlu_counters(&self) -> Option<(u64, u64)> {
        None
    }
}

/// The machine surface a *BTB-directed* engine (Boomerang, Shotgun)
/// uses to run ahead of fetch: branch prediction, RAS, cache probes,
/// prefetch issue, and pre-decoding for reactive BTB fills.
pub trait RunaheadContext {
    /// Current simulation cycle.
    fn cycle(&self) -> u64;

    /// Predicts the direction of the conditional branch at `pc` (TAGE).
    fn predict_cond(&mut self, pc: Addr) -> bool;

    /// Pushes a predicted return address (speculative RAS).
    fn ras_push(&mut self, ret: Addr);

    /// Pops the predicted return target.
    fn ras_pop(&mut self) -> Option<Addr>;

    /// Probes the L1i/MSHRs for `block` (counts a cache lookup).
    fn l1i_lookup(&mut self, block: Block) -> bool;

    /// Issues a prefetch for `block`, tagged with its `source`.
    fn issue_prefetch(&mut self, block: Block, source: PfSource, extra_delay: u64);

    /// Whether `block`'s contents are available for pre-decoding
    /// (resident in the L1i — in-flight blocks are not yet decodable).
    fn block_present(&self, block: Block) -> bool;

    /// Pre-decodes `block`, returning its branches as a shared slice
    /// (see [`PrefetchContext::predecode`]).
    fn predecode(&mut self, block: Block) -> Arc<[BtbEntry]>;
}

/// A scriptable context for unit tests.
#[derive(Default)]
pub struct MockContext {
    /// Current cycle returned by [`PrefetchContext::cycle`].
    pub now: u64,
    /// Blocks that count as resident/in-flight.
    pub resident: std::collections::HashSet<Block>,
    /// Prefetches issued: `(block, extra_delay)` in order.
    pub issued: Vec<(Block, u64)>,
    /// Source tags of the issued prefetches, in the same order.
    pub issued_sources: Vec<PfSource>,
    /// Lookups performed, in order.
    pub lookups: Vec<Block>,
    /// Pre-decode results by block.
    pub code: std::collections::HashMap<Block, Vec<BtbEntry>>,
    /// BTB contents for `btb_target`.
    pub btb: std::collections::HashMap<Addr, Addr>,
    /// Branches deposited into the BTB prefetch buffer.
    pub btb_buffer_fills: Vec<(Block, Vec<BtbEntry>)>,
    /// Direction returned by `predict_cond` for pcs in this set
    /// (everything else predicts not-taken).
    pub taken_pcs: std::collections::HashSet<Addr>,
    /// Speculative RAS used by `ras_push` / `ras_pop`.
    pub ras: Vec<Addr>,
}

impl RunaheadContext for MockContext {
    fn cycle(&self) -> u64 {
        self.now
    }

    fn predict_cond(&mut self, pc: Addr) -> bool {
        self.taken_pcs.contains(&pc)
    }

    fn ras_push(&mut self, ret: Addr) {
        self.ras.push(ret);
    }

    fn ras_pop(&mut self) -> Option<Addr> {
        self.ras.pop()
    }

    fn l1i_lookup(&mut self, block: Block) -> bool {
        self.lookups.push(block);
        self.resident.contains(&block)
    }

    fn issue_prefetch(&mut self, block: Block, source: PfSource, extra_delay: u64) {
        self.issued.push((block, extra_delay));
        self.issued_sources.push(source);
        self.resident.insert(block);
    }

    fn block_present(&self, block: Block) -> bool {
        self.resident.contains(&block)
    }

    fn predecode(&mut self, block: Block) -> Arc<[BtbEntry]> {
        self.decode_arc(block)
    }
}

impl MockContext {
    fn decode_arc(&self, block: Block) -> Arc<[BtbEntry]> {
        self.code
            .get(&block)
            .map(|v| Arc::from(v.as_slice()))
            .unwrap_or_else(|| Arc::from([].as_slice()))
    }
}

impl PrefetchContext for MockContext {
    fn cycle(&self) -> u64 {
        self.now
    }

    fn l1i_lookup(&mut self, block: Block) -> bool {
        self.lookups.push(block);
        self.resident.contains(&block)
    }

    fn issue_prefetch(&mut self, block: Block, source: PfSource, extra_delay: u64) {
        self.issued.push((block, extra_delay));
        self.issued_sources.push(source);
        self.resident.insert(block); // arrives eventually; tests treat as in-flight
    }

    fn predecode(&mut self, block: Block) -> Arc<[BtbEntry]> {
        self.decode_arc(block)
    }

    fn decode_branch_at(&mut self, block: Block, byte_offset: u32) -> Option<BtbEntry> {
        self.code
            .get(&block)?
            .iter()
            .find(|e| dcfb_trace::block_offset(e.pc) == byte_offset)
            .copied()
    }

    fn btb_target(&mut self, pc: Addr) -> Option<Addr> {
        self.btb.get(&pc).copied()
    }

    fn fill_btb_buffer(&mut self, block: Block, branches: Arc<[BtbEntry]>) {
        self.btb_buffer_fills.push((block, branches.to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcfb_trace::InstrKind;

    #[test]
    fn recent_instrs_shift() {
        let mut r = RecentInstrs::default();
        assert!(r.last_branch().is_none());
        r.push(Instr::other(0x100, 4));
        r.push(Instr::branch(0x104, 4, InstrKind::Jump, 0x200));
        assert_eq!(r.last.unwrap().pc, 0x104);
        assert_eq!(r.prev.unwrap().pc, 0x100);
        assert_eq!(r.last_branch().unwrap().pc, 0x104);
        // Delay-slot shape: branch then a non-branch in the slot.
        r.push(Instr::other(0x200, 4));
        assert_eq!(r.last_branch().unwrap().pc, 0x104);
    }

    #[test]
    fn mock_context_records_activity() {
        let mut m = MockContext::default();
        m.resident.insert(5);
        let ctx: &mut dyn PrefetchContext = &mut m;
        assert!(ctx.l1i_lookup(5));
        assert!(!ctx.l1i_lookup(6));
        ctx.issue_prefetch(6, PfSource::NextLine, 0);
        assert_eq!(m.issued, vec![(6, 0)]);
        assert_eq!(m.issued_sources, vec![PfSource::NextLine]);
        assert_eq!(m.lookups, vec![5, 6]);
    }

    #[test]
    fn mock_runahead_surface_works() {
        let mut m = MockContext::default();
        m.taken_pcs.insert(0x40);
        let ctx: &mut dyn RunaheadContext = &mut m;
        assert!(ctx.predict_cond(0x40));
        assert!(!ctx.predict_cond(0x44));
        ctx.ras_push(0x100);
        assert_eq!(ctx.ras_pop(), Some(0x100));
        assert_eq!(ctx.ras_pop(), None);
        assert!(!ctx.block_present(3));
        ctx.issue_prefetch(3, PfSource::Shotgun, 0);
        assert!(ctx.block_present(3));
    }
}
