//! Boomerang: metadata-free BTB-directed instruction & BTB prefetching
//! (HPCA'17 [19]).
//!
//! Boomerang runs the branch-prediction unit ahead of fetch over a
//! *basic-block-oriented* BTB: each entry, keyed by a basic-block start
//! address, gives the terminating branch, its class, and its target.
//! Discovered fetch regions are pushed into the FTQ; the blocks they
//! touch are probed in the L1i and prefetched on a miss. On a BB-BTB
//! miss the engine stalls, fetches the missing block, *pre-decodes* it
//! to recover the BTB entries, fills the BTB, and resumes — which is
//! also how it prefills the BTB ahead of the core.

use crate::context::RunaheadContext;
use dcfb_frontend::{BranchClass, BtbEntry, Ftq, FtqEntry};
use dcfb_telemetry::PfSource;
use dcfb_trace::{block_of, Addr, Block, Instr, InstrKind};

/// One basic-block BTB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BbEntry {
    /// Address of the terminating branch.
    pub end: Addr,
    /// Branch target (0 when unknown, e.g. an indirect seen only by the
    /// pre-decoder).
    pub target: Addr,
    /// Branch class.
    pub class: BranchClass,
}

#[derive(Clone, Copy, Debug)]
struct BbWay {
    tag: u64,
    valid: bool,
    stamp: u64,
    entry: BbEntry,
}

/// A set-associative basic-block-oriented BTB.
#[derive(Clone, Debug)]
pub struct BbBtb {
    ways: usize,
    sets: usize,
    slots: Vec<BbWay>,
    clock: u64,
    lookups: u64,
    hits: u64,
}

impl BbBtb {
    /// Creates a BB-BTB with `entries` total entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries % ways == 0, "bad BB-BTB shape");
        BbBtb {
            ways,
            sets: entries / ways,
            slots: vec![
                BbWay {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                    entry: BbEntry {
                        end: 0,
                        target: 0,
                        class: BranchClass::Jump,
                    },
                };
                entries
            ],
            clock: 0,
            lookups: 0,
            hits: 0,
        }
    }

    fn locate(&self, pc: Addr) -> (usize, u64) {
        let set = ((pc >> 2) as usize) % self.sets;
        let tag = (pc >> 2) / self.sets as u64;
        (set * self.ways, tag)
    }

    /// Looks up the basic block starting at `pc`.
    pub fn lookup(&mut self, pc: Addr) -> Option<BbEntry> {
        self.clock += 1;
        self.lookups += 1;
        let (base, tag) = self.locate(pc);
        for i in base..base + self.ways {
            if self.slots[i].valid && self.slots[i].tag == tag {
                self.slots[i].stamp = self.clock;
                self.hits += 1;
                return Some(self.slots[i].entry);
            }
        }
        None
    }

    /// Inserts (or refreshes) the basic block starting at `pc`.
    pub fn insert(&mut self, pc: Addr, entry: BbEntry) {
        self.clock += 1;
        let (base, tag) = self.locate(pc);
        for i in base..base + self.ways {
            if self.slots[i].valid && self.slots[i].tag == tag {
                // Keep a known target over an unknown one.
                let keep_target = entry.target == 0 && self.slots[i].entry.target != 0;
                let target = if keep_target {
                    self.slots[i].entry.target
                } else {
                    entry.target
                };
                self.slots[i].entry = BbEntry { target, ..entry };
                self.slots[i].stamp = self.clock;
                return;
            }
        }
        let victim = (base..base + self.ways)
            .find(|&i| !self.slots[i].valid)
            .unwrap_or_else(|| {
                (base..base + self.ways)
                    .min_by_key(|&i| self.slots[i].stamp)
                    .expect("set non-empty")
            });
        self.slots[victim] = BbWay {
            tag,
            valid: true,
            stamp: self.clock,
            entry,
        };
    }

    /// `(lookups, hits)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

/// Boomerang runahead statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoomerangStats {
    /// BB-BTB misses that stalled FTQ filling.
    pub btb_miss_stalls: u64,
    /// Reactive pre-decode fills performed.
    pub reactive_fills: u64,
    /// Fetch regions pushed into the FTQ.
    pub regions_pushed: u64,
    /// Prefetches issued from FTQ scanning.
    pub prefetches: u64,
    /// Cursor stalls on indirect branches with unknown targets.
    pub unresolved_indirects: u64,
    /// Redirects received from the core.
    pub redirects: u64,
}

/// The Boomerang engine.
pub struct Boomerang {
    bb_btb: BbBtb,
    cursor: Addr,
    /// Waiting for this block to arrive for a reactive fill.
    stall: Option<Block>,
    /// Blocks scanned past the cursor looking for its terminating
    /// branch (basic blocks may span cache blocks).
    scan_len: u32,
    /// Stopped until redirect (unresolvable indirect).
    parked: bool,
    steps_per_cycle: usize,
    /// Retire-side learning state: current basic-block start.
    bb_start: Option<Addr>,
    stats: BoomerangStats,
}

impl Boomerang {
    /// Creates Boomerang with a BB-BTB of `btb_entries` (the paper's
    /// Boomerang uses a conventional 2 K-entry budget).
    pub fn new(btb_entries: usize, start_pc: Addr) -> Self {
        Boomerang {
            bb_btb: BbBtb::new(btb_entries, 4),
            cursor: start_pc,
            stall: None,
            scan_len: 0,
            parked: false,
            steps_per_cycle: 2,
            bb_start: Some(start_pc),
            stats: BoomerangStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BoomerangStats {
        self.stats
    }

    /// Read access to the BB-BTB (tests, harness).
    pub fn bb_btb(&self) -> &BbBtb {
        &self.bb_btb
    }

    /// Per-core storage: BB-BTB entries (~8 B each) + 64-entry L1i
    /// prefetch buffer.
    pub fn storage_bits(&self) -> u64 {
        (self.bb_btb.slots.len() as u64) * 64 + 64 * (34 + 8)
    }

    /// Learns basic-block entries from the retired instruction stream.
    pub fn on_retire(&mut self, instr: &Instr) {
        let Some(start) = self.bb_start else {
            self.bb_start = Some(instr.pc);
            return;
        };
        if instr.kind.is_branch() {
            let class = match instr.kind {
                InstrKind::CondBranch { .. } => BranchClass::Conditional,
                InstrKind::Jump => BranchClass::Jump,
                InstrKind::Call => BranchClass::Call,
                InstrKind::IndirectJump => BranchClass::IndirectJump,
                InstrKind::IndirectCall => BranchClass::IndirectCall,
                InstrKind::Return => BranchClass::Return,
                InstrKind::Other => unreachable!(),
            };
            self.bb_btb.insert(
                start,
                BbEntry {
                    end: instr.pc,
                    target: instr.target,
                    class,
                },
            );
            // The next basic block starts wherever execution goes.
            self.bb_start = Some(instr.next_pc());
        }
    }

    /// Whether the engine is parked on an unresolvable target and
    /// needs a core redirect to make progress.
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// The block a pending reactive fill is waiting on, if any.
    pub fn stalled_block(&self) -> Option<Block> {
        self.stall
    }

    /// Core redirect (mispredict or BTB-miss discovery at fetch):
    /// squash the FTQ and restart discovery at `pc`.
    pub fn redirect(&mut self, pc: Addr, ftq: &mut Ftq) {
        ftq.clear();
        self.cursor = pc;
        self.stall = None;
        self.scan_len = 0;
        self.parked = false;
        self.stats.redirects += 1;
    }

    /// Runs the discovery engine for one cycle: resolves pending
    /// reactive fills, then pushes up to `steps_per_cycle` regions into
    /// the FTQ, probing and prefetching their blocks.
    pub fn advance(&mut self, ctx: &mut dyn RunaheadContext, ftq: &mut Ftq) {
        if self.parked {
            return;
        }
        if let Some(block) = self.stall {
            if !ctx.block_present(block) {
                return;
            }
            self.stall = None;
            if !self.fill_or_scan(ctx, block) {
                return;
            }
        }
        for _ in 0..self.steps_per_cycle {
            if ftq.is_full() || self.parked {
                break;
            }
            let Some(entry) = self.bb_btb.lookup(self.cursor) else {
                // BB-BTB miss: fetch + pre-decode the block at the cursor.
                self.stats.btb_miss_stalls += 1;
                let block = block_of(self.cursor);
                if ctx.block_present(block) {
                    self.fill_or_scan(ctx, block);
                    // Retry next cycle (entry may now be present).
                } else {
                    if !ctx.l1i_lookup(block) {
                        ctx.issue_prefetch(block, PfSource::Boomerang, 0);
                        self.stats.prefetches += 1;
                    }
                    self.stall = Some(block);
                }
                return;
            };
            // Resolve where execution continues after this basic block.
            let fallthrough = entry.end + 4;
            let next = match entry.class {
                BranchClass::Conditional => {
                    if ctx.predict_cond(entry.end) {
                        entry.target
                    } else {
                        fallthrough
                    }
                }
                BranchClass::Jump => entry.target,
                BranchClass::Call | BranchClass::IndirectCall => {
                    if entry.target == 0 {
                        self.park();
                        return;
                    }
                    ctx.ras_push(fallthrough);
                    entry.target
                }
                BranchClass::IndirectJump => {
                    if entry.target == 0 {
                        self.park();
                        return;
                    }
                    entry.target
                }
                BranchClass::Return => match ctx.ras_pop() {
                    Some(t) => t,
                    None => {
                        self.park();
                        return;
                    }
                },
            };
            let region = FtqEntry {
                start: self.cursor,
                end: entry.end,
                next,
            };
            // Probe/prefetch every block the region touches.
            for block in region.blocks() {
                if !ctx.l1i_lookup(block) {
                    ctx.issue_prefetch(block, PfSource::Boomerang, 0);
                    self.stats.prefetches += 1;
                }
            }
            ftq.push(region);
            self.stats.regions_pushed += 1;
            self.cursor = next;
        }
    }

    fn park(&mut self) {
        self.parked = true;
        self.stats.unresolved_indirects += 1;
    }

    /// Pre-decodes `block` and fills BB-BTB entries derivable from it:
    /// the basic block at the cursor (ending at the first branch at or
    /// after it) plus every fall-through block between consecutive
    /// branches. Returns `true` if the cursor's basic block was
    /// resolved.
    fn reactive_fill(&mut self, ctx: &mut dyn RunaheadContext, block: Block) -> bool {
        let branches = ctx.predecode(block);
        self.stats.reactive_fills += 1;
        let to_entry = |b: &BtbEntry| BbEntry {
            end: b.pc,
            target: b.target,
            class: b.class,
        };
        // Basic block at the cursor.
        let resolved = match branches.iter().find(|b| b.pc >= self.cursor) {
            Some(first) => {
                self.bb_btb.insert(self.cursor, to_entry(first));
                true
            }
            None => false,
        };
        // Fall-through blocks between consecutive branches.
        for pair in branches.windows(2) {
            let start = pair[0].pc + 4;
            if start <= pair[1].pc {
                self.bb_btb.insert(start, to_entry(&pair[1]));
            }
        }
        resolved
    }

    /// Reactive fill that follows a basic block spanning multiple cache
    /// blocks: when `block` holds no branch at or after the cursor, the
    /// scan continues into the next block (bounded), parking on
    /// pathological runs. Returns `true` when the cursor resolved.
    fn fill_or_scan(&mut self, ctx: &mut dyn RunaheadContext, block: Block) -> bool {
        if self.reactive_fill(ctx, block) {
            self.scan_len = 0;
            return true;
        }
        if self.scan_len < 4 {
            self.scan_len += 1;
            let next = block + 1;
            if !ctx.block_present(next) && !ctx.l1i_lookup(next) {
                ctx.issue_prefetch(next, PfSource::Boomerang, 0);
                self.stats.prefetches += 1;
            }
            self.stall = Some(next);
        } else {
            // Give up; the core's decode-side redirect will restart us.
            self.scan_len = 0;
            self.parked = true;
            self.stats.unresolved_indirects += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MockContext;

    fn code_block(ctx: &mut MockContext, block: Block, branches: &[(u64, Addr, BranchClass)]) {
        ctx.code.insert(
            block,
            branches
                .iter()
                .map(|&(off, target, class)| BtbEntry {
                    pc: block * 64 + off,
                    target,
                    class,
                })
                .collect(),
        );
    }

    #[test]
    fn bb_btb_roundtrip_and_lru() {
        let mut b = BbBtb::new(8, 2);
        let e = BbEntry {
            end: 0x10c,
            target: 0x500,
            class: BranchClass::Jump,
        };
        assert!(b.lookup(0x100).is_none());
        b.insert(0x100, e);
        assert_eq!(b.lookup(0x100), Some(e));
        assert_eq!(b.counters(), (2, 1));
    }

    #[test]
    fn bb_btb_keeps_known_target_on_unknown_refresh() {
        let mut b = BbBtb::new(8, 2);
        b.insert(
            0x100,
            BbEntry {
                end: 0x10c,
                target: 0x500,
                class: BranchClass::IndirectCall,
            },
        );
        // Pre-decoder refresh with unknown target must not erase it.
        b.insert(
            0x100,
            BbEntry {
                end: 0x10c,
                target: 0,
                class: BranchClass::IndirectCall,
            },
        );
        assert_eq!(b.lookup(0x100).unwrap().target, 0x500);
    }

    #[test]
    fn retire_learning_builds_entries() {
        let mut bm = Boomerang::new(64, 0x1000);
        bm.on_retire(&Instr::other(0x1000, 4));
        bm.on_retire(&Instr::other(0x1004, 4));
        bm.on_retire(&Instr::branch(
            0x1008,
            4,
            InstrKind::CondBranch { taken: true },
            0x2000,
        ));
        let e = bm.bb_btb.lookup(0x1000).expect("entry learned at retire");
        assert_eq!(e.end, 0x1008);
        assert_eq!(e.target, 0x2000);
        assert_eq!(e.class, BranchClass::Conditional);
    }

    #[test]
    fn advance_pushes_regions_and_prefetches() {
        let mut bm = Boomerang::new(64, 0x1000);
        let mut ftq = Ftq::new(8);
        let mut ctx = MockContext::default();
        // Learn: bb at 0x1000 ends 0x1040 jumping to 0x2000; bb at
        // 0x2000 ends 0x2008 jumping back (loop shape).
        for (s, e, t) in [(0x1000u64, 0x1040u64, 0x2000u64), (0x2000, 0x2008, 0x1000)] {
            bm.bb_btb.insert(
                s,
                BbEntry {
                    end: e,
                    target: t,
                    class: BranchClass::Jump,
                },
            );
        }
        bm.advance(&mut ctx, &mut ftq);
        assert_eq!(ftq.len(), 2);
        let first = ftq.pop().unwrap();
        assert_eq!(first.start, 0x1000);
        assert_eq!(first.end, 0x1040);
        assert_eq!(first.next, 0x2000);
        // Blocks 0x40 (0x1000>>6) and 0x41 probed and prefetched.
        assert!(ctx.issued.iter().any(|&(b, _)| b == 0x40));
        assert!(ctx.issued.iter().any(|&(b, _)| b == 0x41));
        assert!(bm.stats().regions_pushed >= 2);
    }

    #[test]
    fn btb_miss_triggers_reactive_predecode_fill() {
        let mut bm = Boomerang::new(64, 0x1000);
        let mut ftq = Ftq::new(8);
        let mut ctx = MockContext::default();
        // Code at block 0x40: a jump at 0x1008 -> 0x3000.
        code_block(&mut ctx, 0x40, &[(0x8, 0x3000, BranchClass::Jump)]);
        // First advance: BTB miss, block not present -> prefetch + stall.
        bm.advance(&mut ctx, &mut ftq);
        assert_eq!(bm.stats().btb_miss_stalls, 1);
        assert!(ctx.issued.iter().any(|&(b, _)| b == 0x40));
        assert!(ftq.is_empty());
        // Block "arrives" (MockContext marks issued blocks resident):
        // the next advance pre-decodes, fills, and pushes the region
        // (it then misses again at the region's target and re-stalls).
        bm.advance(&mut ctx, &mut ftq);
        assert!(bm.stats().reactive_fills >= 1);
        assert!(!ftq.is_empty());
        let region = ftq.pop().unwrap();
        assert_eq!(region.start, 0x1000);
        assert_eq!(region.end, 0x1008);
        assert_eq!(region.next, 0x3000);
    }

    #[test]
    fn conditional_uses_direction_prediction() {
        let mut bm = Boomerang::new(64, 0x1000);
        let mut ftq = Ftq::new(8);
        let mut ctx = MockContext::default();
        bm.bb_btb.insert(
            0x1000,
            BbEntry {
                end: 0x1008,
                target: 0x5000,
                class: BranchClass::Conditional,
            },
        );
        // Not taken: next = fallthrough.
        bm.advance(&mut ctx, &mut ftq);
        assert_eq!(ftq.pop().unwrap().next, 0x100c);
        // Taken: next = target.
        let mut bm2 = Boomerang::new(64, 0x1000);
        bm2.bb_btb.insert(
            0x1000,
            BbEntry {
                end: 0x1008,
                target: 0x5000,
                class: BranchClass::Conditional,
            },
        );
        ctx.taken_pcs.insert(0x1008);
        let mut ftq2 = Ftq::new(8);
        bm2.advance(&mut ctx, &mut ftq2);
        assert_eq!(ftq2.pop().unwrap().next, 0x5000);
    }

    #[test]
    fn calls_and_returns_use_ras() {
        let mut bm = Boomerang::new(64, 0x1000);
        let mut ftq = Ftq::new(8);
        let mut ctx = MockContext::default();
        bm.bb_btb.insert(
            0x1000,
            BbEntry {
                end: 0x1004,
                target: 0x8000,
                class: BranchClass::Call,
            },
        );
        bm.bb_btb.insert(
            0x8000,
            BbEntry {
                end: 0x8008,
                target: 0,
                class: BranchClass::Return,
            },
        );
        bm.advance(&mut ctx, &mut ftq);
        // Call pushed fallthrough 0x1008; return popped it.
        let regions: Vec<FtqEntry> = std::iter::from_fn(|| ftq.pop()).collect();
        assert_eq!(regions[0].next, 0x8000);
        assert_eq!(regions[1].next, 0x1008);
    }

    #[test]
    fn unknown_indirect_parks_until_redirect() {
        let mut bm = Boomerang::new(64, 0x1000);
        let mut ftq = Ftq::new(8);
        let mut ctx = MockContext::default();
        bm.bb_btb.insert(
            0x1000,
            BbEntry {
                end: 0x1004,
                target: 0,
                class: BranchClass::IndirectJump,
            },
        );
        bm.advance(&mut ctx, &mut ftq);
        assert_eq!(bm.stats().unresolved_indirects, 1);
        // Parked: further advances do nothing.
        bm.advance(&mut ctx, &mut ftq);
        assert!(ftq.is_empty());
        // Redirect unparks.
        bm.redirect(0x9000, &mut ftq);
        assert_eq!(bm.stats().redirects, 1);
        bm.bb_btb.insert(
            0x9000,
            BbEntry {
                end: 0x9004,
                target: 0x9100,
                class: BranchClass::Jump,
            },
        );
        bm.advance(&mut ctx, &mut ftq);
        assert!(!ftq.is_empty());
    }

    #[test]
    fn redirect_squashes_ftq() {
        let mut bm = Boomerang::new(64, 0x1000);
        let mut ftq = Ftq::new(8);
        ftq.push(FtqEntry {
            start: 1,
            end: 2,
            next: 3,
        });
        bm.redirect(0x4000, &mut ftq);
        assert!(ftq.is_empty());
    }
}
