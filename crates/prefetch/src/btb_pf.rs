//! The BTB prefetch buffer (§V-C).
//!
//! Pre-decoded branches are staged here instead of being force-fed into
//! the BTB; a hit moves the matching entry into the BTB proper. Entries
//! are organized Confluence-style: one entry holds *all* branches of a
//! cache block, so a whole block's branches are stored in a single
//! buffer access. The paper's configuration is 32 entries, 2-way
//! set-associative (1 KB).

use dcfb_frontend::BtbEntry;
use dcfb_trace::{block_of, Addr, Block};
use std::sync::Arc;

#[derive(Clone, Debug)]
struct BufEntry {
    block: Block,
    stamp: u64,
    /// Shared with the pre-decode cache: a fill stores the `Arc`, not a
    /// copy of the branch set.
    branches: Arc<[BtbEntry]>,
}

/// A small set-associative buffer of pre-decoded block branch sets.
#[derive(Clone, Debug)]
pub struct BtbPrefetchBuffer {
    sets: usize,
    ways: usize,
    slots: Vec<Option<BufEntry>>,
    clock: u64,
    fills: u64,
    hits: u64,
    lookups: u64,
}

impl BtbPrefetchBuffer {
    /// Creates a buffer with `entries` block slots and associativity
    /// `ways`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries % ways == 0, "bad buffer shape");
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        BtbPrefetchBuffer {
            sets,
            ways,
            slots: vec![None; entries],
            clock: 0,
            fills: 0,
            hits: 0,
            lookups: 0,
        }
    }

    /// The paper's configuration: 32 entries, 2-way.
    pub fn paper_sized() -> Self {
        BtbPrefetchBuffer::new(32, 2)
    }

    fn base(&self, block: Block) -> usize {
        ((block as usize) & (self.sets - 1)) * self.ways
    }

    /// Stores the branches of `block`, replacing the set's LRU entry.
    /// Empty branch sets are ignored (returns `None`). Returns the
    /// block whose entry was displaced, if any — telemetry uses it to
    /// spot early-evicted BTB prefetches.
    pub fn fill(&mut self, block: Block, branches: Arc<[BtbEntry]>) -> Option<Block> {
        if branches.is_empty() {
            return None;
        }
        self.clock += 1;
        self.fills += 1;
        let base = self.base(block);
        // Update in place.
        for i in base..base + self.ways {
            if let Some(e) = &mut self.slots[i] {
                if e.block == block {
                    e.branches = branches;
                    e.stamp = self.clock;
                    return None;
                }
            }
        }
        let victim = (base..base + self.ways)
            .find(|&i| self.slots[i].is_none())
            .unwrap_or_else(|| {
                (base..base + self.ways)
                    .min_by_key(|&i| self.slots[i].as_ref().map(|e| e.stamp).unwrap_or(0))
                    .expect("non-empty set")
            });
        let displaced = self.slots[victim].as_ref().map(|e| e.block);
        self.slots[victim] = Some(BufEntry {
            block,
            stamp: self.clock,
            branches,
        });
        displaced
    }

    /// Looks for the branch at `pc`; on a hit, removes and returns the
    /// *whole block entry's* branches (they move into the BTB together,
    /// §V-C).
    pub fn take_for(&mut self, pc: Addr) -> Option<Arc<[BtbEntry]>> {
        self.lookups += 1;
        let block = block_of(pc);
        let base = self.base(block);
        for i in base..base + self.ways {
            let matches = self.slots[i]
                .as_ref()
                .is_some_and(|e| e.block == block && e.branches.iter().any(|b| b.pc == pc));
            if matches {
                self.hits += 1;
                return self.slots[i].take().map(|e| e.branches);
            }
        }
        None
    }

    /// Non-destructive residency check for the branch at `pc`.
    pub fn contains_branch(&self, pc: Addr) -> bool {
        let block = block_of(pc);
        let base = self.base(block);
        (base..base + self.ways).any(|i| {
            self.slots[i]
                .as_ref()
                .is_some_and(|e| e.block == block && e.branches.iter().any(|b| b.pc == pc))
        })
    }

    /// `(fills, lookups, hits)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.fills, self.lookups, self.hits)
    }

    /// Storage cost in bits: per entry, a block tag (~34 b) plus up to
    /// four compressed branch records (~60 b each), matching the
    /// paper's ≈1 KB figure for 32 entries.
    pub fn storage_bits(&self) -> u64 {
        (self.slots.len() as u64) * (34 + 4 * 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcfb_frontend::BranchClass;

    fn entry(pc: Addr, target: Addr) -> BtbEntry {
        BtbEntry {
            pc,
            target,
            class: BranchClass::Conditional,
        }
    }

    #[test]
    fn fill_take_roundtrip() {
        let mut b = BtbPrefetchBuffer::paper_sized();
        let pc = 100 * 64 + 8;
        b.fill(100, vec![entry(pc, 0x999), entry(pc + 4, 0x888)].into());
        assert!(b.contains_branch(pc));
        assert!(b.contains_branch(pc + 4));
        let branches = b.take_for(pc).unwrap();
        assert_eq!(branches.len(), 2);
        // Whole entry consumed.
        assert!(!b.contains_branch(pc + 4));
        assert_eq!(b.counters(), (1, 1, 1));
    }

    #[test]
    fn miss_on_absent_branch() {
        let mut b = BtbPrefetchBuffer::paper_sized();
        b.fill(100, vec![entry(100 * 64, 1)].into());
        assert!(b.take_for(100 * 64 + 32).is_none());
        assert!(b.take_for(101 * 64).is_none());
    }

    #[test]
    fn empty_fill_ignored() {
        let mut b = BtbPrefetchBuffer::paper_sized();
        b.fill(7, Vec::new().into());
        assert_eq!(b.counters().0, 0);
    }

    #[test]
    fn lru_within_set() {
        let mut b = BtbPrefetchBuffer::new(4, 2); // 2 sets
                                                  // Blocks 0, 2, 4 all map to set 0.
        b.fill(0, vec![entry(0, 1)].into());
        b.fill(2, vec![entry(2 * 64, 1)].into());
        // Touch block 0's entry via refill to make block 2 LRU.
        b.fill(0, vec![entry(0, 9)].into());
        b.fill(4, vec![entry(4 * 64, 1)].into());
        assert!(b.contains_branch(0));
        assert!(!b.contains_branch(2 * 64));
        assert!(b.contains_branch(4 * 64));
    }

    #[test]
    fn refill_updates_in_place() {
        let mut b = BtbPrefetchBuffer::paper_sized();
        b.fill(5, vec![entry(5 * 64, 1)].into());
        b.fill(5, vec![entry(5 * 64, 2), entry(5 * 64 + 8, 3)].into());
        let taken = b.take_for(5 * 64).unwrap();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].target, 2);
    }

    #[test]
    fn storage_about_1kb() {
        let b = BtbPrefetchBuffer::paper_sized();
        let kb = b.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((0.8..1.3).contains(&kb), "storage {kb} KB");
    }
}
