//! SN4L+Dis+BTB: the paper's combined proactive prefetcher (§V).
//!
//! The engine chains sequential and discontinuity prefetching ahead of
//! the fetch stream:
//!
//! * a demanded block enters **SeqQueue** and **DisQueue** at depth 0;
//! * SeqQueue items run SN4L (depth 0) or SN1L (deeper — §V-B: "we use
//!   SN1L, instead of SN4L, to prefetch the sequential regions of
//!   discontinuities"), producing candidates;
//! * DisQueue items replay the DisTable, producing the discontinuity
//!   target as a candidate;
//! * every candidate goes to **RLUQueue** with `depth = trigger + 1`;
//! * popping RLUQueue checks the 8-entry **RLU**; on an RLU miss the
//!   block is looked up in the cache (this is the lookup Fig. 14
//!   counts), prefetched on a miss, pre-decoded into the **BTB prefetch
//!   buffer** (the +BTB part), and — if `depth ≤ 4` — pushed back into
//!   SeqQueue and DisQueue to continue the chain.
//!
//! The chain terminates at depth 4 ("our experiments show that four is
//! a reasonable threshold").

use crate::context::{InstrPrefetcher, PrefetchContext, RecentInstrs};
use crate::dis::Dis;
use crate::tables::{DisTable, Rlu, SeqTable, TagPolicy};
use dcfb_telemetry::PfSource;
use dcfb_trace::Block;
use std::collections::VecDeque;

/// Which engine produced a prefetch candidate (affects issue latency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Source {
    Seq,
    Dis,
}

/// Configuration of the combined engine (§VI-D3 defaults).
#[derive(Clone, Debug)]
pub struct Sn4lDisConfig {
    /// SeqTable entries (16 K in the paper).
    pub seq_entries: usize,
    /// DisTable entries (4 K in the paper).
    pub dis_entries: usize,
    /// DisTable tagging policy (4-bit partial in the paper).
    pub dis_tag: TagPolicy,
    /// DisTable offset width: 4 (fixed ISA) or 6 (variable ISA).
    pub dis_offset_bits: u32,
    /// RLU entries (8 in the paper).
    pub rlu_entries: usize,
    /// Capacity of SeqQueue, DisQueue, and RLUQueue (16 each).
    pub queue_capacity: usize,
    /// Chain-termination depth (4 in the paper).
    pub max_depth: u8,
    /// Enable Confluence-like BTB prefilling (the "+BTB" part).
    pub btb_prefetch: bool,
    /// RLUQueue pops processed per cycle (2 L1i ports).
    pub rlu_per_cycle: usize,
    /// SeqQueue/DisQueue pops processed per cycle.
    pub engine_per_cycle: usize,
    /// Extra issue latency for Dis-sourced prefetches (§VII-D).
    pub dis_issue_delay: u64,
    /// Sequential degree used past a discontinuity (depth > 0). The
    /// paper chooses SN1L ("we use SN1L, instead of SN4L, to prefetch
    /// the sequential regions of discontinuities"); setting 4 turns the
    /// deep engine back into an SN4L for the ablation study.
    pub deep_seq_degree: u64,
}

impl Default for Sn4lDisConfig {
    fn default() -> Self {
        Sn4lDisConfig {
            seq_entries: 16 * 1024,
            dis_entries: 4 * 1024,
            dis_tag: TagPolicy::Partial(4),
            dis_offset_bits: 4,
            rlu_entries: 8,
            queue_capacity: 16,
            max_depth: 4,
            btb_prefetch: true,
            rlu_per_cycle: 2,
            engine_per_cycle: 2,
            dis_issue_delay: 3,
            deep_seq_degree: 1,
        }
    }
}

impl Sn4lDisConfig {
    /// The paper's SN4L+Dis configuration *without* BTB prefilling
    /// (Fig. 17's middle bar).
    pub fn without_btb() -> Self {
        Sn4lDisConfig {
            btb_prefetch: false,
            ..Sn4lDisConfig::default()
        }
    }
}

/// Counters exposed for the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sn4lDisStats {
    /// Prefetches issued by the sequential engine.
    pub seq_issued: u64,
    /// Prefetches issued by the discontinuity engine.
    pub dis_issued: u64,
    /// Candidates filtered by the RLU.
    pub rlu_filtered: u64,
    /// Candidates dropped because a queue was full.
    pub queue_drops: u64,
    /// Chains terminated by the depth limit.
    pub depth_terminations: u64,
    /// Blocks sent to the pre-decoder for BTB prefilling.
    pub predecoded: u64,
}

/// The combined SN4L+Dis(+BTB) prefetcher.
pub struct Sn4lDisBtb {
    cfg: Sn4lDisConfig,
    seq: SeqTable,
    dis: Dis,
    rlu: Rlu,
    seq_q: VecDeque<(Block, u8)>,
    dis_q: VecDeque<(Block, u8)>,
    rlu_q: VecDeque<(Block, u8, Source)>,
    stats: Sn4lDisStats,
}

impl Sn4lDisBtb {
    /// Creates the engine with the given configuration.
    pub fn new(cfg: Sn4lDisConfig) -> Self {
        Sn4lDisBtb {
            seq: SeqTable::new(cfg.seq_entries),
            dis: Dis::with_table(DisTable::new(
                cfg.dis_entries,
                cfg.dis_tag,
                cfg.dis_offset_bits,
            )),
            rlu: Rlu::new(cfg.rlu_entries),
            seq_q: VecDeque::with_capacity(cfg.queue_capacity),
            dis_q: VecDeque::with_capacity(cfg.queue_capacity),
            rlu_q: VecDeque::with_capacity(cfg.queue_capacity),
            stats: Sn4lDisStats::default(),
            cfg,
        }
    }

    /// The paper's full SN4L+Dis+BTB configuration.
    pub fn paper_sized() -> Self {
        Sn4lDisBtb::new(Sn4lDisConfig::default())
    }

    /// Accumulated counters.
    pub fn stats(&self) -> Sn4lDisStats {
        self.stats
    }

    /// RLU filter counters (`(hits, misses)`).
    pub fn rlu_counters(&self) -> (u64, u64) {
        self.rlu.counters()
    }

    /// Current `(SeqQueue, DisQueue, RLUQueue)` occupancies. Exposed so
    /// the conformance lockstep driver can compare queue state against
    /// the reference model after every event.
    pub fn queue_lens(&self) -> (usize, usize, usize) {
        (self.seq_q.len(), self.dis_q.len(), self.rlu_q.len())
    }

    /// Counters of the embedded Dis engine
    /// (`(issued, recorded, decode_mismatches, unresolved_indirects)`).
    pub fn dis_counters(&self) -> (u64, u64, u64, u64) {
        self.dis.counters()
    }

    /// Read access to the SeqTable (analysis binaries).
    pub fn seq_table(&self) -> &SeqTable {
        &self.seq
    }

    fn push_candidate(&mut self, block: Block, depth: u8, src: Source) {
        if self.rlu_q.len() == self.cfg.queue_capacity {
            self.stats.queue_drops += 1;
            return;
        }
        self.rlu_q.push_back((block, depth, src));
    }

    /// Queues `block` as a new triggering block. Sequential candidates
    /// go to the DisQueue only (§V-B's example: SN4L's A+1, A+2 are
    /// "pushed to the end of DisQueue"); discontinuity targets go to
    /// both queues (B is "sent to DisQueue and SeqQueue"), which is
    /// what makes the deeper sequential engine an SN1L rather than a
    /// runaway SN4L chain.
    fn push_trigger(&mut self, block: Block, depth: u8, also_seq: bool) {
        if depth > self.cfg.max_depth {
            self.stats.depth_terminations += 1;
            return;
        }
        if also_seq {
            if self.seq_q.len() == self.cfg.queue_capacity {
                self.stats.queue_drops += 1;
            } else {
                self.seq_q.push_back((block, depth));
            }
        }
        if self.dis_q.len() == self.cfg.queue_capacity {
            self.stats.queue_drops += 1;
        } else {
            self.dis_q.push_back((block, depth));
        }
    }

    fn pump_rlu(&mut self, ctx: &mut dyn PrefetchContext) {
        for _ in 0..self.cfg.rlu_per_cycle {
            let Some((block, depth, src)) = self.rlu_q.pop_front() else {
                break;
            };
            if self.rlu.check_insert(block) {
                self.stats.rlu_filtered += 1;
                continue;
            }
            // RLU miss: the real event — cache lookup, prefetch on miss,
            // pre-decode for the BTB, and chain continuation.
            let resident = ctx.l1i_lookup(block);
            if !resident {
                let delay = match src {
                    Source::Seq => 0,
                    Source::Dis => self.cfg.dis_issue_delay,
                };
                // Telemetry attribution: first-level candidates belong
                // to the triggering engine; deeper chain walks are the
                // proactive RLU's own work (§V-B).
                let tag = match (src, depth) {
                    (Source::Seq, 0..=1) => PfSource::Sn4l,
                    (Source::Dis, 0..=1) => PfSource::Dis,
                    _ => PfSource::ProactiveChain,
                };
                ctx.issue_prefetch(block, tag, delay);
                match src {
                    Source::Seq => self.stats.seq_issued += 1,
                    Source::Dis => self.stats.dis_issued += 1,
                }
            }
            if self.cfg.btb_prefetch {
                let branches = ctx.predecode(block);
                self.stats.predecoded += 1;
                ctx.fill_btb_buffer(block, branches);
            }
            self.push_trigger(block, depth, src == Source::Dis);
        }
    }

    fn pump_seq(&mut self, ctx: &mut dyn PrefetchContext) {
        for _ in 0..self.cfg.engine_per_cycle {
            let Some((block, depth)) = self.seq_q.pop_front() else {
                break;
            };
            // SN4L at depth 0 (demand trigger), SN1L deeper (§V-B;
            // configurable for the ablation study).
            let span = if depth == 0 {
                4u64
            } else {
                self.cfg.deep_seq_degree
            };
            for d in 1..=span {
                let cand = block + d;
                if self.seq.is_useful(cand) {
                    self.push_candidate(cand, depth.saturating_add(1), Source::Seq);
                }
            }
            let _ = ctx;
        }
    }

    fn pump_dis(&mut self, ctx: &mut dyn PrefetchContext) {
        for _ in 0..self.cfg.engine_per_cycle {
            let Some((block, depth)) = self.dis_q.pop_front() else {
                break;
            };
            if let Some(target) = self.dis.peek_target(ctx, block) {
                self.push_candidate(target, depth.saturating_add(1), Source::Dis);
            }
        }
    }
}

impl InstrPrefetcher for Sn4lDisBtb {
    fn name(&self) -> String {
        if self.cfg.btb_prefetch {
            "SN4L+Dis+BTB".to_owned()
        } else {
            "SN4L+Dis".to_owned()
        }
    }

    fn storage_bits(&self) -> u64 {
        let tables = self.seq.storage_bits() + self.dis.storage_bits();
        // 4-bit local status + 1-bit prefetch flag per L1i line.
        let line_meta = 512 * 5;
        // Queues (16 x ~34-bit block + 3-bit depth) x 3 + 8-entry RLU.
        let queues = 3 * (self.cfg.queue_capacity as u64 * 37) + self.cfg.rlu_entries as u64 * 34;
        // BTB prefetch buffer (≈1 KB) when enabled.
        let buffer = if self.cfg.btb_prefetch {
            32 * (34 + 4 * 60)
        } else {
            0
        };
        tables + line_meta + queues + buffer
    }

    fn on_demand(
        &mut self,
        ctx: &mut dyn PrefetchContext,
        block: Block,
        hit: bool,
        hit_was_prefetched: bool,
        recent: &RecentInstrs,
    ) {
        // SN4L metadata (§V-A).
        if !hit || hit_was_prefetched {
            self.seq.set(block);
        }
        // Dis recording (§V-B) on every miss.
        if !hit {
            self.dis.record_from_recent(recent);
        }
        // Demands populate the RLU and (in +BTB mode) feed the
        // pre-decoder on first sight.
        self.rlu.note_demand(block);
        if self.cfg.btb_prefetch && !hit {
            let branches = ctx.predecode(block);
            self.stats.predecoded += 1;
            ctx.fill_btb_buffer(block, branches);
        }
        // Proactive trigger at depth 0.
        self.push_trigger(block, 0, true);
    }

    fn on_evict(&mut self, _ctx: &mut dyn PrefetchContext, block: Block, useless_prefetch: bool) {
        if useless_prefetch {
            self.seq.reset(block);
        }
    }

    fn rlu_counters(&self) -> Option<(u64, u64)> {
        let (hits, misses) = self.rlu.counters();
        Some((hits + misses, hits))
    }

    fn tick(&mut self, ctx: &mut dyn PrefetchContext) {
        self.pump_seq(ctx);
        self.pump_dis(ctx);
        self.pump_rlu(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MockContext;
    use dcfb_frontend::{BranchClass, BtbEntry};
    use dcfb_trace::{Instr, InstrKind};

    fn drain(p: &mut Sn4lDisBtb, ctx: &mut MockContext, cycles: usize) {
        for _ in 0..cycles {
            p.tick(ctx);
        }
    }

    #[test]
    fn demand_triggers_sn4l_prefetches() {
        let mut p = Sn4lDisBtb::new(Sn4lDisConfig::without_btb());
        let mut ctx = MockContext::default();
        p.on_demand(&mut ctx, 100, false, false, &RecentInstrs::default());
        drain(&mut p, &mut ctx, 8);
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert!(blocks.contains(&101));
        assert!(blocks.contains(&104));
        assert_eq!(p.stats().seq_issued, 4);
    }

    #[test]
    fn chain_follows_discontinuity_with_sn1l() {
        // Sequence A=100 -> branch at 102 to B=200 (paper's example).
        let mut p = Sn4lDisBtb::new(Sn4lDisConfig::without_btb());
        let mut ctx = MockContext::default();
        let branch_pc = 102 * 64 + 16;
        ctx.code.insert(
            102,
            vec![BtbEntry {
                pc: branch_pc,
                target: 200 * 64,
                class: BranchClass::Jump,
            }],
        );
        // Teach the DisTable: miss on 200 right after the branch.
        let mut recent = RecentInstrs::default();
        recent.push(Instr::branch(branch_pc, 4, InstrKind::Jump, 200 * 64));
        p.on_demand(&mut ctx, 200, false, false, &recent);
        drain(&mut p, &mut ctx, 8);
        // Re-demand block 100: SN4L covers 101..104; Dis on 102 chains
        // to 200; SN1L covers 201.
        ctx.issued.clear();
        ctx.resident.clear();
        p.on_demand(&mut ctx, 100, true, false, &RecentInstrs::default());
        drain(&mut p, &mut ctx, 20);
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert!(blocks.contains(&200), "discontinuity target: {blocks:?}");
        assert!(blocks.contains(&201), "SN1L past discontinuity: {blocks:?}");
        assert!(p.stats().dis_issued >= 1);
    }

    #[test]
    fn rlu_filters_duplicate_candidates() {
        let mut p = Sn4lDisBtb::new(Sn4lDisConfig::without_btb());
        let mut ctx = MockContext::default();
        p.on_demand(&mut ctx, 100, false, false, &RecentInstrs::default());
        drain(&mut p, &mut ctx, 8);
        let first = ctx.lookups.len();
        // Same trigger again: candidates are in the RLU; no new lookups.
        p.on_demand(&mut ctx, 100, true, false, &RecentInstrs::default());
        drain(&mut p, &mut ctx, 8);
        assert_eq!(ctx.lookups.len(), first, "RLU failed to filter");
        assert!(p.stats().rlu_filtered >= 4);
    }

    #[test]
    fn depth_limit_terminates_chains() {
        // Build a long chain of discontinuities: block i jumps to block
        // i+10, for i = 100, 110, 120, ...
        let mut p = Sn4lDisBtb::new(Sn4lDisConfig {
            btb_prefetch: false,
            ..Sn4lDisConfig::default()
        });
        let mut ctx = MockContext::default();
        for k in 0..12u64 {
            let b = 100 + k * 10;
            let pc = b * 64 + 4;
            ctx.code.insert(
                b,
                vec![BtbEntry {
                    pc,
                    target: (b + 10) * 64,
                    class: BranchClass::Jump,
                }],
            );
            let mut recent = RecentInstrs::default();
            recent.push(Instr::branch(pc, 4, InstrKind::Jump, (b + 10) * 64));
            p.on_demand(&mut ctx, b + 10, false, false, &recent);
            drain(&mut p, &mut ctx, 4);
        }
        ctx.issued.clear();
        ctx.resident.clear();
        p.on_demand(&mut ctx, 100, true, false, &RecentInstrs::default());
        drain(&mut p, &mut ctx, 64);
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        // Depth 4 allows following only a handful of discontinuities.
        assert!(blocks.contains(&110));
        assert!(!blocks.contains(&190), "chain went too deep: {blocks:?}");
        assert!(p.stats().depth_terminations > 0);
    }

    #[test]
    fn btb_mode_predecodes_rlu_misses() {
        let mut p = Sn4lDisBtb::paper_sized();
        let mut ctx = MockContext::default();
        ctx.code.insert(
            101,
            vec![BtbEntry {
                pc: 101 * 64 + 8,
                target: 400 * 64,
                class: BranchClass::Call,
            }],
        );
        p.on_demand(&mut ctx, 100, false, false, &RecentInstrs::default());
        drain(&mut p, &mut ctx, 8);
        assert!(
            ctx.btb_buffer_fills.iter().any(|(b, _)| *b == 101),
            "block 101 not pre-decoded: {:?}",
            ctx.btb_buffer_fills
                .iter()
                .map(|(b, _)| b)
                .collect::<Vec<_>>()
        );
        assert!(p.stats().predecoded > 0);
    }

    #[test]
    fn dis_prefetches_carry_issue_delay() {
        let mut p = Sn4lDisBtb::new(Sn4lDisConfig::without_btb());
        let mut ctx = MockContext::default();
        let pc = 100 * 64 + 4;
        ctx.code.insert(
            100,
            vec![BtbEntry {
                pc,
                target: 300 * 64,
                class: BranchClass::Jump,
            }],
        );
        let mut recent = RecentInstrs::default();
        recent.push(Instr::branch(pc, 4, InstrKind::Jump, 300 * 64));
        p.on_demand(&mut ctx, 300, false, false, &recent);
        drain(&mut p, &mut ctx, 8);
        ctx.issued.clear();
        ctx.resident.clear();
        p.on_demand(&mut ctx, 100, true, false, &RecentInstrs::default());
        drain(&mut p, &mut ctx, 16);
        let dis_issue = ctx.issued.iter().find(|&&(b, _)| b == 300).unwrap();
        assert_eq!(dis_issue.1, 3, "Dis path must charge extra delay");
    }

    #[test]
    fn queue_overflow_drops_not_panics() {
        let mut p = Sn4lDisBtb::new(Sn4lDisConfig {
            queue_capacity: 2,
            btb_prefetch: false,
            ..Sn4lDisConfig::default()
        });
        let mut ctx = MockContext::default();
        for b in 0..20u64 {
            p.on_demand(&mut ctx, b * 100, false, false, &RecentInstrs::default());
        }
        assert!(p.stats().queue_drops > 0);
        drain(&mut p, &mut ctx, 4);
    }

    #[test]
    fn storage_is_about_7_6_kb() {
        let p = Sn4lDisBtb::paper_sized();
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (6.5..8.5).contains(&kb),
            "total storage {kb:.2} KB, paper says 7.6 KB"
        );
    }

    /// The worked example of §V-E / Fig. 10, followed literally:
    /// block A misses; SeqTable says its four successors have status
    /// bits 0, 1, 0, 1, so SN4L considers only A+2 and A+4; the RLU
    /// filters A+2 (recently looked up); A+4 misses and is prefetched.
    /// DisTable holds offset 9 for block A; the pre-decoder finds a
    /// branch in slot 9 targeting block C, which is not in the RLU or
    /// the cache, so C is prefetched too.
    #[test]
    fn fig10_worked_example() {
        let mut p = Sn4lDisBtb::new(Sn4lDisConfig::without_btb());
        let mut ctx = MockContext::default();
        let a: Block = 1000;
        let c: Block = 2000;

        // SeqTable: A+1 and A+3 learned useless.
        p.seq.reset(a + 1);
        p.seq.reset(a + 3);
        // DisTable: offset 9 recorded for block A.
        p.dis.record_from_recent(&{
            let mut r = RecentInstrs::default();
            r.push(Instr::branch(a * 64 + 9 * 4, 4, InstrKind::Jump, c * 64));
            r
        });
        // The pre-decoder sees a branch in slot 9 of block A -> C.
        ctx.code.insert(
            a,
            vec![BtbEntry {
                pc: a * 64 + 9 * 4,
                target: c * 64,
                class: BranchClass::Jump,
            }],
        );
        // A+2 was recently looked up (RLU filters it).
        p.rlu.check_insert(a + 2);
        // A+2 is also already resident in the cache.
        ctx.resident.insert(a + 2);

        // Access to block A (a miss -> fetch request).
        p.on_demand(&mut ctx, a, false, false, &RecentInstrs::default());
        drain(&mut p, &mut ctx, 12);

        let prefetched: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        assert!(
            prefetched.contains(&(a + 4)),
            "A+4 prefetched: {prefetched:?}"
        );
        assert!(prefetched.contains(&c), "C prefetched: {prefetched:?}");
        assert!(
            !prefetched.contains(&(a + 1)) && !prefetched.contains(&(a + 3)),
            "status-0 blocks must not be prefetched: {prefetched:?}"
        );
        assert!(
            !prefetched.contains(&(a + 2)),
            "RLU must filter A+2: {prefetched:?}"
        );
    }

    #[test]
    fn names_reflect_btb_mode() {
        assert_eq!(Sn4lDisBtb::paper_sized().name(), "SN4L+Dis+BTB");
        assert_eq!(
            Sn4lDisBtb::new(Sn4lDisConfig::without_btb()).name(),
            "SN4L+Dis"
        );
    }
}
