//! Shotgun: footprint-driven BTB-directed prefetching (ASPLOS'18 [20]).
//!
//! Shotgun extends Boomerang with the split U-BTB/C-BTB/RIB (see
//! [`dcfb_frontend::shotgun_btb`]) and *spatial footprints*: when the
//! runahead engine hits an unconditional branch in the U-BTB, it bulk
//! prefetches the blocks recorded in the entry's call footprint (around
//! the target) and return footprint (around the return point) — no BTB
//! walking needed inside the region. Footprints are learned only from
//! the retired instruction stream, so a U-BTB eviction permanently
//! loses them until re-learned: the §III pathology this reproduction
//! must exhibit on large-footprint workloads.

use crate::context::RunaheadContext;
use dcfb_frontend::shotgun_btb::footprint_blocks;
use dcfb_frontend::{BranchClass, Ftq, FtqEntry, ShotgunBtb, ShotgunBtbConfig, ShotgunBtbStats};
use dcfb_telemetry::PfSource;
use dcfb_trace::{block_of, Addr, Block, Instr, InstrKind};

/// Shotgun engine statistics (the split-BTB statistics, including the
/// Fig. 1 footprint miss ratio, live in [`ShotgunBtbStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShotgunStats {
    /// BTB misses (all three structures) that stalled FTQ filling.
    pub btb_miss_stalls: u64,
    /// Reactive pre-decode fills performed.
    pub reactive_fills: u64,
    /// Fetch regions pushed into the FTQ.
    pub regions_pushed: u64,
    /// Demand-path prefetches issued from FTQ scanning.
    pub prefetches: u64,
    /// Bulk prefetches issued from spatial footprints.
    pub footprint_prefetches: u64,
    /// Cursor stalls on unresolvable targets.
    pub unresolved: u64,
    /// Redirects received from the core.
    pub redirects: u64,
    /// Retired dynamic unconditional branches (Fig. 1 denominator).
    pub dyn_uncond: u64,
    /// Of those, how many found a U-BTB entry with a learned footprint
    /// at retire time (Fig. 1: everything else is a footprint miss).
    pub dyn_footprint_hits: u64,
}

impl ShotgunStats {
    /// Fig. 1's metric: the fraction of dynamic unconditional branches
    /// that could not supply a learned spatial footprint.
    pub fn footprint_miss_ratio(&self) -> f64 {
        if self.dyn_uncond == 0 {
            0.0
        } else {
            1.0 - self.dyn_footprint_hits as f64 / self.dyn_uncond as f64
        }
    }

    /// Accumulates another window's counters into this one (shard
    /// stitching: every field is a sum-mergeable event count).
    pub fn absorb(&mut self, other: &ShotgunStats) {
        self.btb_miss_stalls += other.btb_miss_stalls;
        self.reactive_fills += other.reactive_fills;
        self.regions_pushed += other.regions_pushed;
        self.prefetches += other.prefetches;
        self.footprint_prefetches += other.footprint_prefetches;
        self.unresolved += other.unresolved;
        self.redirects += other.redirects;
        self.dyn_uncond += other.dyn_uncond;
        self.dyn_footprint_hits += other.dyn_footprint_hits;
    }
}

/// Accumulates the blocks touched right after an unconditional branch
/// (anchored at its target) to learn the entry's call footprint. Time
/// bounded, so jumps and indirect branches learn footprints too, not
/// just call/return pairs.
struct TargetTracker {
    bb: Addr,
    anchor: Block,
    fp: u8,
    remaining: u32,
}

struct CallTracker {
    call_bb: Addr,
    target_block: Block,
    fp: u8,
}

struct RetTracker {
    call_bb: Addr,
    ret_block: Block,
    fp: u8,
    remaining: u32,
    call_fp: u8,
}

/// The Shotgun engine.
pub struct Shotgun {
    btb: ShotgunBtb,
    cursor: Addr,
    stall: Option<Block>,
    /// Blocks scanned past the cursor looking for its terminating
    /// branch (basic blocks may span cache blocks).
    scan_len: u32,
    parked: bool,
    steps_per_cycle: usize,
    bb_start: Option<Addr>,
    open_calls: Vec<CallTracker>,
    finishing: Vec<RetTracker>,
    target_trackers: Vec<TargetTracker>,
    /// Blocks prefetched by this engine awaiting proactive pre-decode
    /// into the C-BTB once they arrive (§II-B: Shotgun "aggressively
    /// prefill[s] C-BTB by decoding the instruction blocks").
    pending_prefill: Vec<Block>,
    stats: ShotgunStats,
}

impl Shotgun {
    /// Creates Shotgun with the given split-BTB configuration, starting
    /// discovery at `start_pc`.
    pub fn new(cfg: ShotgunBtbConfig, start_pc: Addr) -> Self {
        Shotgun {
            btb: ShotgunBtb::new(cfg),
            cursor: start_pc,
            stall: None,
            scan_len: 0,
            parked: false,
            steps_per_cycle: 2,
            bb_start: Some(start_pc),
            open_calls: Vec::with_capacity(64),
            finishing: Vec::with_capacity(8),
            target_trackers: Vec::with_capacity(8),
            pending_prefill: Vec::with_capacity(32),
            stats: ShotgunStats::default(),
        }
    }

    /// The paper's configuration (1.5 K U-BTB / 128 C-BTB / 512 RIB).
    pub fn paper_sized(start_pc: Addr) -> Self {
        Shotgun::new(ShotgunBtbConfig::default(), start_pc)
    }

    /// Engine statistics.
    pub fn stats(&self) -> ShotgunStats {
        self.stats
    }

    /// Split-BTB statistics (footprint miss ratio etc.).
    pub fn btb_stats(&self) -> ShotgunBtbStats {
        self.btb.stats()
    }

    /// Resets the split-BTB statistics (after warmup).
    pub fn reset_btb_stats(&mut self) {
        self.btb.reset_stats();
        self.stats.dyn_uncond = 0;
        self.stats.dyn_footprint_hits = 0;
    }

    /// Per-core storage overhead: the paper reports 6 KB (extra BTB
    /// segments for lengths/footprints + the 64-entry L1i and 32-entry
    /// BTB prefetch buffers).
    pub fn storage_bits(&self) -> u64 {
        6 * 1024 * 8
    }

    /// Learns BTB entries and spatial footprints from the retired
    /// stream.
    pub fn on_retire(&mut self, instr: &Instr) {
        let block = instr.block();
        // Footprint accumulation: only the innermost open call records.
        if let Some(t) = self.open_calls.last_mut() {
            let delta = block as i64 - t.target_block as i64;
            if (0..8).contains(&delta) {
                t.fp |= 1 << delta;
            }
        }
        // Time-bounded target trackers (jumps and indirects included).
        self.target_trackers.retain_mut(|t| {
            let delta = block as i64 - t.anchor as i64;
            if (0..8).contains(&delta) {
                t.fp |= 1 << delta;
            }
            t.remaining -= 1;
            if t.remaining == 0 {
                self.btb.learn_footprints(t.bb, t.fp, 0);
                false
            } else {
                true
            }
        });
        // Return-footprint accumulation.
        self.finishing.retain_mut(|r| {
            let delta = block as i64 - r.ret_block as i64;
            if (0..8).contains(&delta) {
                r.fp |= 1 << delta;
            }
            r.remaining -= 1;
            if r.remaining == 0 {
                self.btb.learn_footprints(r.call_bb, r.call_fp, r.fp);
                false
            } else {
                true
            }
        });

        let Some(start) = self.bb_start else {
            self.bb_start = Some(instr.pc);
            return;
        };
        if !instr.kind.is_branch() {
            return;
        }
        if instr.kind.is_unconditional() && !matches!(instr.kind, InstrKind::Return) {
            // Fig. 1 accounting: did the discovery engine have a usable
            // footprint for this U-BTB branch's basic block? (Returns
            // live in the RIB and carry no footprint, so they are not
            // part of the metric.)
            self.stats.dyn_uncond += 1;
            if self.btb.peek_u_footprint(start) == Some(true) {
                self.stats.dyn_footprint_hits += 1;
            }
            {
                if self.target_trackers.len() == 8 {
                    let t = self.target_trackers.remove(0);
                    self.btb.learn_footprints(t.bb, t.fp, 0);
                }
                self.target_trackers.push(TargetTracker {
                    bb: start,
                    anchor: block_of(instr.target),
                    fp: 0,
                    remaining: 24,
                });
            }
        }
        match instr.kind {
            InstrKind::CondBranch { .. } => {
                self.btb.insert_c(start, instr.pc, instr.target);
            }
            InstrKind::Jump => {
                self.btb
                    .insert_u(start, instr.pc, instr.target, BranchClass::Jump);
            }
            InstrKind::IndirectJump => {
                self.btb
                    .insert_u(start, instr.pc, instr.target, BranchClass::IndirectJump);
            }
            InstrKind::Call | InstrKind::IndirectCall => {
                let class = if matches!(instr.kind, InstrKind::Call) {
                    BranchClass::Call
                } else {
                    BranchClass::IndirectCall
                };
                self.btb.insert_u(start, instr.pc, instr.target, class);
                self.open_calls.push(CallTracker {
                    call_bb: start,
                    target_block: block_of(instr.target),
                    fp: 0,
                });
                if self.open_calls.len() > 64 {
                    self.open_calls.remove(0);
                }
            }
            InstrKind::Return => {
                self.btb.insert_r(start, instr.pc);
                if let Some(t) = self.open_calls.pop() {
                    self.finishing.push(RetTracker {
                        call_bb: t.call_bb,
                        ret_block: block_of(instr.target),
                        fp: 0,
                        remaining: 16,
                        call_fp: t.fp,
                    });
                }
            }
            InstrKind::Other => unreachable!(),
        }
        self.bb_start = Some(instr.next_pc());
    }

    /// Whether the engine is parked on an unresolvable target and
    /// needs a core redirect to make progress.
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// The block a pending reactive fill is waiting on, if any.
    pub fn stalled_block(&self) -> Option<Block> {
        self.stall
    }

    /// Core redirect: squash and restart discovery at `pc`.
    pub fn redirect(&mut self, pc: Addr, ftq: &mut Ftq) {
        ftq.clear();
        self.cursor = pc;
        self.stall = None;
        self.scan_len = 0;
        self.parked = false;
        self.stats.redirects += 1;
    }

    /// Runs discovery for one cycle (mirrors
    /// [`crate::boomerang::Boomerang::advance`], plus footprint bulk
    /// prefetching).
    pub fn advance(&mut self, ctx: &mut dyn RunaheadContext, ftq: &mut Ftq) {
        self.drain_prefill(ctx);
        if self.parked {
            return;
        }
        if let Some(block) = self.stall {
            if !ctx.block_present(block) {
                return;
            }
            self.stall = None;
            if !self.fill_or_scan(ctx, block) {
                return;
            }
        }
        for _ in 0..self.steps_per_cycle {
            if ftq.is_full() || self.parked {
                break;
            }
            if !self.step(ctx, ftq) {
                break;
            }
        }
    }

    /// One discovery step; returns `false` when the engine stalled.
    fn step(&mut self, ctx: &mut dyn RunaheadContext, ftq: &mut Ftq) -> bool {
        // Search the three structures (hardware does so in parallel).
        if let Some(e) = self.btb.lookup_u(self.cursor) {
            let fallthrough = e.end + 4;
            if e.target == 0 {
                self.parked = true;
                self.stats.unresolved += 1;
                return false;
            }
            if e.class.is_call() {
                ctx.ras_push(fallthrough);
            }
            // Footprint-driven bulk prefetch: the Shotgun advantage.
            if e.call_footprint != 0 {
                for b in footprint_blocks(block_of(e.target), e.call_footprint) {
                    if !ctx.l1i_lookup(b) {
                        ctx.issue_prefetch(b, PfSource::Shotgun, 0);
                        self.stats.footprint_prefetches += 1;
                    }
                    self.queue_prefill(b);
                }
            }
            if e.ret_footprint != 0 {
                for b in footprint_blocks(block_of(fallthrough), e.ret_footprint) {
                    if !ctx.l1i_lookup(b) {
                        ctx.issue_prefetch(b, PfSource::Shotgun, 0);
                        self.stats.footprint_prefetches += 1;
                    }
                    self.queue_prefill(b);
                }
            }
            self.push_region(ctx, ftq, e.end, e.target);
            return true;
        }
        if let Some((end, target)) = self.btb.lookup_c(self.cursor) {
            let next = if ctx.predict_cond(end) {
                target
            } else {
                end + 4
            };
            self.push_region(ctx, ftq, end, next);
            return true;
        }
        if let Some(end) = self.btb.lookup_r(self.cursor) {
            match ctx.ras_pop() {
                Some(t) => {
                    self.push_region(ctx, ftq, end, t);
                    return true;
                }
                None => {
                    self.parked = true;
                    self.stats.unresolved += 1;
                    return false;
                }
            }
        }
        // Total BTB miss: reactive prefill (fetch + pre-decode).
        self.stats.btb_miss_stalls += 1;
        let block = block_of(self.cursor);
        if ctx.block_present(block) {
            self.fill_or_scan(ctx, block);
        } else {
            if !ctx.l1i_lookup(block) {
                ctx.issue_prefetch(block, PfSource::Shotgun, 0);
                self.stats.prefetches += 1;
            }
            self.stall = Some(block);
        }
        false
    }

    /// Reactive fill that follows a basic block spanning multiple cache
    /// blocks (bounded scan; parks for a core redirect on pathological
    /// runs). Returns `true` when the cursor's basic block resolved.
    fn fill_or_scan(&mut self, ctx: &mut dyn RunaheadContext, block: Block) -> bool {
        if self.reactive_fill(ctx, block) {
            self.scan_len = 0;
            return true;
        }
        if self.scan_len < 4 {
            self.scan_len += 1;
            let next = block + 1;
            if !ctx.block_present(next) && !ctx.l1i_lookup(next) {
                ctx.issue_prefetch(next, PfSource::Shotgun, 0);
                self.stats.prefetches += 1;
            }
            self.stall = Some(next);
        } else {
            self.scan_len = 0;
            self.parked = true;
            self.stats.unresolved += 1;
        }
        false
    }

    fn push_region(&mut self, ctx: &mut dyn RunaheadContext, ftq: &mut Ftq, end: Addr, next: Addr) {
        let region = FtqEntry {
            start: self.cursor,
            end,
            next,
        };
        for block in region.blocks() {
            if !ctx.l1i_lookup(block) {
                ctx.issue_prefetch(block, PfSource::Shotgun, 0);
                self.stats.prefetches += 1;
                self.queue_prefill(block);
            }
        }
        ftq.push(region);
        self.stats.regions_pushed += 1;
        self.cursor = next;
    }

    fn queue_prefill(&mut self, block: Block) {
        if !self.pending_prefill.contains(&block) {
            if self.pending_prefill.len() == 32 {
                self.pending_prefill.remove(0);
            }
            self.pending_prefill.push(block);
        }
    }

    /// Proactive BTB prefilling: pre-decode prefetched blocks as they
    /// arrive and insert the recoverable basic blocks (conditional
    /// branches especially — the tiny C-BTB lives off this).
    fn drain_prefill(&mut self, ctx: &mut dyn RunaheadContext) {
        let mut i = 0;
        let mut filled = 0;
        while i < self.pending_prefill.len() && filled < 2 {
            let block = self.pending_prefill[i];
            if ctx.block_present(block) {
                self.pending_prefill.swap_remove(i);
                self.prefill_from_block(ctx, block);
                filled += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Inserts every basic block recoverable from `block`'s pre-decode:
    /// fall-through pairs between consecutive branches, plus the block
    /// base when it starts a basic block.
    fn prefill_from_block(&mut self, ctx: &mut dyn RunaheadContext, block: Block) {
        let branches = ctx.predecode(block);
        if branches.is_empty() {
            return;
        }
        let mut insert = |start: Addr, b: &dcfb_frontend::BtbEntry| match b.class {
            BranchClass::Conditional => self.btb.insert_c(start, b.pc, b.target),
            BranchClass::Jump | BranchClass::Call => {
                self.btb.insert_u(start, b.pc, b.target, b.class)
            }
            BranchClass::IndirectJump | BranchClass::IndirectCall => {
                self.btb.insert_u(start, b.pc, 0, b.class)
            }
            BranchClass::Return => self.btb.insert_r(start, b.pc),
        };
        let base = block << dcfb_trace::BLOCK_BITS;
        insert(base, &branches[0]);
        for pair in branches.windows(2) {
            let start = pair[0].pc + 4;
            if start <= pair[1].pc {
                insert(start, &pair[1]);
            }
        }
    }

    /// Pre-decodes `block` and prefills the split BTB (targets in the
    /// encoding only — footprints cannot be prefilled). Returns `true`
    /// if the cursor's basic block was resolved.
    fn reactive_fill(&mut self, ctx: &mut dyn RunaheadContext, block: Block) -> bool {
        let branches = ctx.predecode(block);
        self.stats.reactive_fills += 1;
        let mut insert = |start: Addr, b: &dcfb_frontend::BtbEntry| match b.class {
            BranchClass::Conditional => self.btb.insert_c(start, b.pc, b.target),
            BranchClass::Jump | BranchClass::Call => {
                self.btb.insert_u(start, b.pc, b.target, b.class)
            }
            BranchClass::IndirectJump | BranchClass::IndirectCall => {
                self.btb.insert_u(start, b.pc, 0, b.class)
            }
            BranchClass::Return => self.btb.insert_r(start, b.pc),
        };
        let resolved = match branches.iter().find(|b| b.pc >= self.cursor) {
            Some(first) => {
                insert(self.cursor, first);
                true
            }
            None => false,
        };
        for pair in branches.windows(2) {
            let start = pair[0].pc + 4;
            if start <= pair[1].pc {
                insert(start, &pair[1]);
            }
        }
        resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MockContext;
    use dcfb_frontend::BtbEntry;

    fn small() -> Shotgun {
        Shotgun::new(
            ShotgunBtbConfig {
                u_entries: 32,
                c_entries: 16,
                r_entries: 16,
                ways: 4,
            },
            0x1000,
        )
    }

    fn retire_call_sequence(s: &mut Shotgun) {
        // bb at 0x1000 ends with a call at 0x1008 to 0x8000; the callee
        // touches blocks 0x200, 0x201, 0x203 and returns to 0x100c,
        // after which blocks 0x40, 0x41 are touched.
        s.on_retire(&Instr::other(0x1000, 4));
        s.on_retire(&Instr::branch(0x1008, 4, InstrKind::Call, 0x8000));
        s.on_retire(&Instr::other(0x8000, 4)); // block 0x200
        s.on_retire(&Instr::other(0x8040, 4)); // block 0x201
        s.on_retire(&Instr::other(0x80c0, 4)); // block 0x203
        s.on_retire(&Instr::branch(0x80c4, 4, InstrKind::Return, 0x100c));
        for i in 0..16u64 {
            s.on_retire(&Instr::other(0x100c + i * 4, 4));
        }
    }

    #[test]
    fn retire_learns_ubtb_and_footprints() {
        let mut s = small();
        retire_call_sequence(&mut s);
        let e = s.btb.lookup_u(0x1000).expect("call bb learned");
        assert_eq!(e.end, 0x1008);
        assert_eq!(e.target, 0x8000);
        // Call footprint: blocks 0x200 (+0), 0x201 (+1), 0x203 (+3).
        assert_eq!(e.call_footprint, 0b1011);
        // Return footprint: block 0x40 (+0) and 0x41 (+1).
        assert_eq!(e.ret_footprint, 0b11);
    }

    #[test]
    fn footprint_hit_bulk_prefetches() {
        let mut s = small();
        retire_call_sequence(&mut s);
        let mut ftq = Ftq::new(8);
        let mut ctx = MockContext::default();
        s.advance(&mut ctx, &mut ftq);
        let blocks: Vec<Block> = ctx.issued.iter().map(|&(b, _)| b).collect();
        // Callee working set prefetched from the footprint in one shot.
        assert!(blocks.contains(&0x200), "{blocks:?}");
        assert!(blocks.contains(&0x201));
        assert!(blocks.contains(&0x203));
        // Return-side blocks too.
        assert!(blocks.contains(&0x40));
        assert!(blocks.contains(&0x41));
        assert!(s.stats().footprint_prefetches >= 5);
    }

    #[test]
    fn evicted_ubtb_entry_loses_footprint_until_relearned() {
        let mut s = Shotgun::new(
            ShotgunBtbConfig {
                u_entries: 4,
                c_entries: 4,
                r_entries: 4,
                ways: 4,
            },
            0x1000,
        );
        retire_call_sequence(&mut s);
        assert!(s.btb.lookup_u(0x1000).unwrap().call_footprint != 0);
        // Thrash the single U-BTB set until 0x1000's entry is evicted.
        for i in 1..8u64 {
            s.btb.insert_u(
                0x20000 + i * 0x100,
                0x20000 + i * 0x100 + 4,
                0x30000,
                BranchClass::Jump,
            );
        }
        assert!(s.btb.lookup_u(0x1000).is_none(), "entry must be evicted");
        // Re-learn only the entry (prefill-style) via reactive path:
        let mut ctx = MockContext::default();
        ctx.code.insert(
            0x40,
            vec![BtbEntry {
                pc: 0x1008,
                target: 0x8000,
                class: BranchClass::Call,
            }],
        );
        s.cursor = 0x1000;
        s.reactive_fill(&mut ctx, 0x40);
        let e = s.btb.lookup_u(0x1000).expect("prefilled");
        assert_eq!(e.call_footprint, 0, "footprints must not be prefillable");
    }

    #[test]
    fn cbtb_miss_triggers_reactive_fill() {
        let mut s = small();
        let mut ftq = Ftq::new(8);
        let mut ctx = MockContext::default();
        ctx.code.insert(
            0x40,
            vec![BtbEntry {
                pc: 0x1004,
                target: 0x2000,
                class: BranchClass::Conditional,
            }],
        );
        s.advance(&mut ctx, &mut ftq); // miss -> prefetch 0x40, stall
        assert_eq!(s.stats().btb_miss_stalls, 1);
        s.advance(&mut ctx, &mut ftq); // fill
        s.advance(&mut ctx, &mut ftq); // now C-BTB hits; region pushed
        assert!(s.btb.stats().c_hits >= 1);
        assert!(!ftq.is_empty());
        let r = ftq.pop().unwrap();
        assert_eq!(r.start, 0x1000);
        assert_eq!(r.end, 0x1004);
        assert_eq!(r.next, 0x1008); // predicted not-taken
    }

    #[test]
    fn returns_use_ras() {
        let mut s = small();
        retire_call_sequence(&mut s);
        // RIB entry for the callee's return bb exists (bb start 0x8000).
        let mut ftq = Ftq::new(8);
        let mut ctx = MockContext::default();
        s.advance(&mut ctx, &mut ftq);
        // Region 1: call bb -> next = 0x8000 (RAS now holds 0x100c).
        // Region 2: return bb -> next = 0x100c.
        let regions: Vec<FtqEntry> = std::iter::from_fn(|| ftq.pop()).collect();
        assert!(regions.len() >= 2, "{regions:?}");
        assert_eq!(regions[0].next, 0x8000);
        assert_eq!(regions[1].next, 0x100c);
    }

    #[test]
    fn redirect_resets_state() {
        let mut s = small();
        let mut ftq = Ftq::new(8);
        ftq.push(FtqEntry {
            start: 1,
            end: 2,
            next: 3,
        });
        s.parked = true;
        s.redirect(0x7000, &mut ftq);
        assert!(ftq.is_empty());
        assert!(!s.parked);
        assert_eq!(s.stats().redirects, 1);
    }

    #[test]
    fn storage_is_6kb() {
        assert_eq!(small().storage_bits() / 8 / 1024, 6);
    }
}
