//! # dcfb-prefetch
//!
//! Every prefetcher studied in "Divide and Conquer Frontend Bottleneck":
//!
//! **The paper's proposal**
//! * [`Sn4l`] — the selective next-four-line sequential prefetcher
//!   (16 K-entry tagless `SeqTable`),
//! * [`Dis`] — the lightweight discontinuity prefetcher (4 K-entry,
//!   4-bit partially-tagged `DisTable`, targets recovered by
//!   pre-decoding),
//! * [`Sn4lDisBtb`] — the combined proactive engine: SeqQueue, DisQueue,
//!   RLU + RLUQueue, depth-limited chaining, SN1L past discontinuities,
//!   and Confluence-like BTB prefilling into a [`BtbPrefetchBuffer`].
//!
//! **Baselines (implemented from scratch)**
//! * [`NextLine`] — NL/N2L/N4L/N8L sequential prefetchers,
//! * [`DiscontinuityPrefetcher`] — the conventional full-address
//!   discontinuity table of Spracklen et al.,
//! * [`Confluence`] — SHIFT-style temporal streaming (the paper models
//!   Confluence as SHIFT plus a 16 K-entry BTB upper bound),
//! * [`Boomerang`] — BTB-directed runahead with reactive BTB prefills,
//! * [`Shotgun`] — footprint-driven BTB-directed prefetching over the
//!   split U-BTB/C-BTB/RIB.
//!
//! All L1i-event-driven prefetchers implement [`InstrPrefetcher`] and
//! interact with the machine through [`PrefetchContext`], so the
//! simulator in `dcfb-sim` can swap them freely. The BTB-directed
//! engines (Boomerang, Shotgun) also drive the FTQ and are given a
//! richer interface (see their modules).

//! # Examples
//!
//! Drive SN4L by hand with the scriptable [`context::MockContext`]:
//!
//! ```
//! use dcfb_prefetch::context::MockContext;
//! use dcfb_prefetch::{InstrPrefetcher, RecentInstrs, Sn4l};
//!
//! let mut sn4l = Sn4l::paper_sized();
//! let mut ctx = MockContext::default();
//! // First touch of block 100: all four successors look useful.
//! sn4l.on_demand(&mut ctx, 100, false, false, &RecentInstrs::default());
//! let blocks: Vec<u64> = ctx.issued.iter().map(|&(b, _)| b).collect();
//! assert_eq!(blocks, vec![101, 102, 103, 104]);
//!
//! // Block 102 gets evicted unused: SN4L learns to skip it.
//! sn4l.on_evict(&mut ctx, 102, true);
//! ctx.issued.clear();
//! ctx.resident.clear();
//! sn4l.on_demand(&mut ctx, 100, true, false, &RecentInstrs::default());
//! let blocks: Vec<u64> = ctx.issued.iter().map(|&(b, _)| b).collect();
//! assert_eq!(blocks, vec![101, 103, 104]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boomerang;
pub mod btb_pf;
pub mod composite;
pub mod confluence;
pub mod context;
pub mod dis;
pub mod discontinuity;
pub mod nextline;
pub mod proactive;
pub mod registry;
pub mod shotgun;
pub mod sn4l;
pub mod tables;

pub use boomerang::Boomerang;
pub use btb_pf::BtbPrefetchBuffer;
pub use composite::Composite;
pub use confluence::{Confluence, ConfluenceConfig};
pub use context::{InstrPrefetcher, PrefetchContext, RecentInstrs, RunaheadContext};
pub use dis::Dis;
pub use discontinuity::DiscontinuityPrefetcher;
pub use nextline::NextLine;
pub use proactive::{Sn4lDisBtb, Sn4lDisConfig};
pub use registry::{
    find_method, method_names, registry, DiscoveryEngine, DriverPlan, MethodRow, PrefetcherKind,
};
pub use shotgun::Shotgun;
pub use sn4l::Sn4l;
pub use tables::{DisTable, Rlu, SeqTable, TagPolicy};
