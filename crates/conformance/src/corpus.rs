//! The minimized fuzz corpus.
//!
//! The campaign keeps only *coverage-increasing* inputs: a candidate is
//! admitted when its [`CoverageMap`] lights a bit the accumulated
//! campaign map has not seen, and is then re-minimized through the
//! existing ddmin [`shrink`] down to a subsequence that still
//! contributes novel coverage. Entries serialize to a one-line,
//! human-diffable text form (one token per op) so the corpus can
//! persist through the PR-1 checkpoint machinery and ship as the
//! checked-in seed corpus `corpus_seed.txt`, which the 15th
//! `dcfb conformance` check replays through every engine harness.

use crate::coverage::{coverage_of, CoverageMap};
use crate::ops::{CodeLayout, EngineOp, RecentBranch};
use crate::shrink::shrink;
use std::fmt::Write as _;

/// Schema tag of the corpus text form (header line + checkpoint key).
pub const CORPUS_SCHEMA: &str = "dcfb-corpus-v1";

/// The checked-in seed corpus, produced by a `dcfb fuzz` campaign and
/// re-blessed with `dcfb fuzz --corpus-out` after intentional
/// reference-model changes.
const BUILTIN: &str = include_str!("corpus_seed.txt");

/// FNV-1a over `bytes` — the stable, dependency-free digest used for
/// corpus identity (two campaigns with equal digests hold identical
/// entries in identical order).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Renders `ops` as one line: space-separated tokens, `T` for ticks,
/// `D:block:hp[:pc:target]` demands (`h`/`p` are 0/1 flags),
/// `F:block:p` fills, `E:block:u` evicts.
pub fn serialize_ops(ops: &[EngineOp]) -> String {
    let mut out = String::new();
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match op {
            EngineOp::Demand {
                block,
                hit,
                hit_was_prefetched,
                branch,
            } => {
                let _ = write!(
                    out,
                    "D:{block}:{}{}",
                    u8::from(*hit),
                    u8::from(*hit_was_prefetched)
                );
                if let Some(b) = branch {
                    let _ = write!(out, ":{}:{}", b.pc, b.target);
                }
            }
            EngineOp::Fill {
                block,
                was_prefetch,
            } => {
                let _ = write!(out, "F:{block}:{}", u8::from(*was_prefetch));
            }
            EngineOp::Evict { block, useless } => {
                let _ = write!(out, "E:{block}:{}", u8::from(*useless));
            }
            EngineOp::Tick => out.push('T'),
        }
    }
    out
}

fn parse_flag(s: &str, what: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("bad {what} flag {s:?} (want 0/1)")),
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|e| format!("bad {what} {s:?}: {e}"))
}

/// Parses one [`serialize_ops`] line back into ops.
///
/// # Errors
///
/// A one-line description naming the offending token.
pub fn parse_ops(line: &str) -> Result<Vec<EngineOp>, String> {
    let mut ops = Vec::new();
    for tok in line.split_whitespace() {
        let mut parts = tok.split(':');
        let kind = parts.next().unwrap_or_default();
        let op = match kind {
            "T" => EngineOp::Tick,
            "D" => {
                let block = parse_u64(parts.next().unwrap_or_default(), "demand block")?;
                let flags = parts.next().unwrap_or_default();
                if flags.len() != 2 {
                    return Err(format!("bad demand flags in {tok:?} (want two 0/1 chars)"));
                }
                let hit = parse_flag(&flags[0..1], "hit")?;
                let hit_was_prefetched = parse_flag(&flags[1..2], "hit_was_prefetched")?;
                let branch = match parts.next() {
                    None => None,
                    Some(pc) => {
                        let pc = parse_u64(pc, "branch pc")?;
                        let target = parse_u64(parts.next().unwrap_or_default(), "branch target")?;
                        Some(RecentBranch { pc, target })
                    }
                };
                EngineOp::Demand {
                    block,
                    hit,
                    hit_was_prefetched,
                    branch,
                }
            }
            "F" => EngineOp::Fill {
                block: parse_u64(parts.next().unwrap_or_default(), "fill block")?,
                was_prefetch: parse_flag(parts.next().unwrap_or_default(), "was_prefetch")?,
            },
            "E" => EngineOp::Evict {
                block: parse_u64(parts.next().unwrap_or_default(), "evict block")?,
                useless: parse_flag(parts.next().unwrap_or_default(), "useless")?,
            },
            _ => return Err(format!("unknown op token {tok:?}")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in op token {tok:?}"));
        }
        ops.push(op);
    }
    if ops.is_empty() {
        return Err("empty op line".to_owned());
    }
    Ok(ops)
}

/// One admitted, minimized input.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The minimized op sequence.
    pub ops: Vec<EngineOp>,
    /// The entry's own coverage map (over the campaign layout).
    pub map: CoverageMap,
}

/// The ordered store of coverage-increasing inputs.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in admission order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Re-admits an already-minimized entry (checkpoint resume): its
    /// map is recomputed over `layout` and folded into `global`.
    pub fn admit_resumed(
        &mut self,
        layout: &CodeLayout,
        global: &mut CoverageMap,
        ops: Vec<EngineOp>,
    ) {
        let map = coverage_of(layout, &ops);
        global.merge(&map);
        self.entries.push(CorpusEntry { ops, map });
    }

    /// Considers a candidate whose coverage is `map`: admitted iff it
    /// lights a bit `global` has not seen. On admission the input is
    /// re-minimized with ddmin down to a subsequence that still
    /// contributes novel coverage over the pre-admission map, `global`
    /// absorbs both the full input's and the minimized entry's
    /// coverage, and the entry is stored. Returns whether it was
    /// admitted.
    pub fn consider(
        &mut self,
        layout: &CodeLayout,
        global: &mut CoverageMap,
        ops: &[EngineOp],
        map: &CoverageMap,
    ) -> bool {
        if !map.has_novel_bits_over(global) {
            return false;
        }
        let before = *global;
        let minimized = shrink(ops, &|sub: &[EngineOp]| {
            coverage_of(layout, sub).has_novel_bits_over(&before)
        });
        let entry_map = coverage_of(layout, &minimized);
        global.merge(map);
        global.merge(&entry_map);
        self.entries.push(CorpusEntry {
            ops: minimized,
            map: entry_map,
        });
        true
    }

    /// The serialized entry lines, in admission order.
    pub fn lines(&self) -> Vec<String> {
        self.entries.iter().map(|e| serialize_ops(&e.ops)).collect()
    }

    /// The corpus digest: FNV-1a over every serialized entry line, in
    /// order. Equal digests mean identical corpora.
    pub fn digest(&self) -> String {
        let mut h = fnv1a64(CORPUS_SCHEMA.as_bytes());
        for line in self.lines() {
            h ^= fnv1a64(line.as_bytes());
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("fnv:{h:016x}")
    }

    /// Renders the whole corpus in the checked-in text form.
    pub fn render(&self, layout_seed: u64) -> String {
        let mut out = format!("# {CORPUS_SCHEMA} layout-seed={layout_seed}\n");
        for line in self.lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Parses a corpus text (the checked-in form): a header naming the
/// schema and the layout seed, then one entry line per input.
///
/// # Errors
///
/// A one-line description of the malformed header or entry.
pub fn parse_corpus_text(text: &str) -> Result<(u64, Vec<Vec<EngineOp>>), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty corpus file")?;
    let rest = header
        .strip_prefix(&format!("# {CORPUS_SCHEMA} layout-seed="))
        .ok_or_else(|| format!("bad corpus header {header:?}"))?;
    let layout_seed = parse_u64(rest.trim(), "layout seed")?;
    let mut entries = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        entries.push(parse_ops(line)?);
    }
    Ok((layout_seed, entries))
}

/// The checked-in seed corpus: `(layout_seed, entries)`.
///
/// # Errors
///
/// A one-line description if `corpus_seed.txt` is malformed.
pub fn builtin_corpus() -> Result<(u64, Vec<Vec<EngineOp>>), String> {
    parse_corpus_text(BUILTIN)
}

/// The 15th conformance check: every checked-in minimized corpus entry
/// still passes lockstep through every engine harness (the corpus is
/// the distilled record of the behaviors campaigns found interesting —
/// a regression here means a reference/production divergence on a
/// previously-conforming behavior).
pub fn check_corpus_replay() -> Result<String, String> {
    let (layout_seed, entries) = builtin_corpus()?;
    let layout = crate::fuzz::Fuzzer::new(layout_seed).layout();
    let harnesses = crate::campaign::engine_harnesses(&layout);
    let mut replayed = 0usize;
    for (i, ops) in entries.iter().enumerate() {
        for h in &harnesses {
            if let Some(d) = h.run(ops) {
                return Err(format!(
                    "corpus entry {i} ({} ops) diverged on {}:\n{d}",
                    ops.len(),
                    h.name()
                ));
            }
            replayed += 1;
        }
    }
    Ok(format!(
        "{} entries × {} harnesses replay clean ({replayed} runs)",
        entries.len(),
        harnesses.len()
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::fuzz::Fuzzer;

    #[test]
    fn ops_round_trip_through_text() {
        let mut fz = Fuzzer::new(13);
        let layout = fz.layout();
        let ops = fz.engine_ops(&layout, 300);
        let line = serialize_ops(&ops);
        let back = parse_ops(&line).unwrap();
        assert_eq!(format!("{ops:?}"), format!("{back:?}"));
        assert_eq!(serialize_ops(&back), line);
    }

    #[test]
    fn malformed_op_lines_error() {
        for bad in [
            "",
            "X:1:0",
            "D:abc:00",
            "D:5:2",
            "D:5:001",
            "D:5:01:12",
            "D:5:01:12:13:14",
            "F:1:7",
            "E::1",
            "T:1",
        ] {
            assert!(parse_ops(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn corpus_admits_only_novel_coverage_and_minimizes() {
        let mut fz = Fuzzer::new(17);
        let layout = fz.layout();
        let mut corpus = Corpus::new();
        let mut global = CoverageMap::new();

        let ops = fz.engine_ops(&layout, 400);
        let map = coverage_of(&layout, &ops);
        assert!(corpus.consider(&layout, &mut global, &ops, &map));
        assert_eq!(corpus.len(), 1);
        assert!(
            corpus.entries()[0].ops.len() < ops.len(),
            "minimization kept all {} ops",
            ops.len()
        );
        // The exact same input again: nothing novel, not admitted.
        assert!(!corpus.consider(&layout, &mut global, &ops, &map));
        assert_eq!(corpus.len(), 1);
        // The minimized entry still contributes everything it was
        // admitted for: replaying it lights bits inside the global map.
        assert!(!corpus.entries()[0].map.has_novel_bits_over(&global));
    }

    #[test]
    fn digest_tracks_content_and_order() {
        let mut fz = Fuzzer::new(23);
        let layout = fz.layout();
        let mut a = Corpus::new();
        let mut b = Corpus::new();
        let mut ga = CoverageMap::new();
        let mut gb = CoverageMap::new();
        assert_eq!(a.digest(), b.digest());
        let ops = fz.engine_ops(&layout, 200);
        let map = coverage_of(&layout, &ops);
        a.consider(&layout, &mut ga, &ops, &map);
        assert_ne!(a.digest(), b.digest());
        b.consider(&layout, &mut gb, &ops, &map);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn corpus_text_round_trips() {
        let mut fz = Fuzzer::new(29);
        let layout = fz.layout();
        let mut corpus = Corpus::new();
        let mut global = CoverageMap::new();
        for n in [50, 400, 900] {
            let ops = fz.engine_ops(&layout, n);
            let map = coverage_of(&layout, &ops);
            corpus.consider(&layout, &mut global, &ops, &map);
        }
        let text = corpus.render(29);
        let (seed, entries) = parse_corpus_text(&text).unwrap();
        assert_eq!(seed, 29);
        assert_eq!(entries.len(), corpus.len());
        for (e, back) in corpus.entries().iter().zip(entries.iter()) {
            assert_eq!(format!("{:?}", e.ops), format!("{back:?}"));
        }
        assert!(parse_corpus_text("no header\n").is_err());
        assert!(parse_corpus_text("# dcfb-corpus-v1 layout-seed=x\n").is_err());
    }

    #[test]
    fn builtin_corpus_parses_and_replays_clean() {
        let (seed, entries) = builtin_corpus().expect("well-formed seed corpus");
        assert!(seed > 0);
        assert!(!entries.is_empty(), "seed corpus must ship entries");
        let msg = check_corpus_replay().expect("replay clean");
        assert!(msg.contains("replay clean"), "{msg}");
    }
}
