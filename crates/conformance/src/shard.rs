//! Sharded-vs-sequential parity: the PR-5-style gate for the sharded
//! executor in `dcfb_sim::shard`.
//!
//! Two tiers, mirroring the digest policy documented in DESIGN.md:
//!
//! 1. **Exact** — a one-shard plan replays the sequential instruction
//!    sequence bit-for-bit, so its merged digest must equal the
//!    checked-in golden for *every* registry method. (The goldens are
//!    themselves pinned to the sequential run by `digest-parity`.)
//! 2. **Tolerance** — with K > 1 the warmup-overlap prefix only
//!    approximates the history a sequential run carries into each
//!    slice, so byte-identity is impossible. Instead, the merged
//!    report's headline counters must match a fresh sequential run
//!    within the validated per-counter tolerances recorded as
//!    `# shard-tolerance` lines in `golden_digests.txt`. Measured
//!    instructions must always merge exactly.

use crate::golden::{
    fixture_config, fixture_image, fixture_report, goldens, shard_tolerances, FIXTURE_TRACE_SEED,
};
use dcfb_sim::{run_sharded, ShardOptions, SimReport};
use std::fmt::Write as _;

/// Shard count for the tolerance tier.
const TOLERANCE_SHARDS: usize = 3;
/// Methods exercised in the tolerance tier — one per driver style plus
/// a composition (the exact tier covers the whole registry).
const TOLERANCE_METHODS: [&str; 3] = ["Baseline", "SN4L+Dis+BTB", "Shotgun"];

/// The headline counters the tolerance tier compares. `instrs` is
/// listed for completeness but is checked exactly, never by tolerance.
fn counters_of(r: &SimReport) -> [(&'static str, f64); 7] {
    [
        ("instrs", r.instrs as f64),
        ("cycles", r.cycles as f64),
        ("demand_accesses", r.l1i.demand_accesses as f64),
        ("demand_misses", r.l1i.demand_misses as f64),
        ("frontend_stalls", r.frontend_stalls() as f64),
        ("external_requests", r.external_requests as f64),
        ("branch_accuracy", r.branch_accuracy),
    ]
}

/// Runs both parity tiers over the golden fixture.
///
/// Returns `Ok(summary)` when every method passes, `Err(detail)`
/// naming the offending method/shard (and counter, in the tolerance
/// tier) otherwise.
pub fn check_shard_parity() -> Result<String, String> {
    let image = fixture_image();

    // Tier 1: K=1 must be byte-identical to the checked-in goldens for
    // every registry method.
    let mut exact = 0usize;
    for (method, want) in &goldens()? {
        let cfg = fixture_config(method)?;
        let opts = ShardOptions {
            shards: 1,
            warmup_overlap: None,
            jobs: 1,
        };
        let run = run_sharded(&cfg, &image, FIXTURE_TRACE_SEED, &opts)
            .map_err(|e| format!("sharded run failed for {method}: {e}"))?;
        if run.merged.digest() != *want {
            return Err(format!(
                "K=1 sharded digest diverged from the sequential golden \
                 for {method} (shard 0 of 1)"
            ));
        }
        exact += 1;
    }

    // Tier 2: K=3 with warmup-overlap, per-counter tolerances.
    let tolerances = shard_tolerances()?;
    if tolerances.is_empty() {
        return Err("no # shard-tolerance lines in golden_digests.txt".to_owned());
    }
    let mut checked_counters = 0usize;
    for method in TOLERANCE_METHODS {
        let cfg = fixture_config(method)?;
        let sequential = fixture_report(&image, method, false)?;
        // The tolerances in golden_digests.txt were calibrated at an
        // overlap of one full warmup window (60 000 instructions on
        // this fixture): the measured worst case there is ~23 % on
        // frontend_stalls (Shotgun) and the recorded bounds carry
        // roughly 2x margin. Shorter overlaps diverge much more (the
        // quarter-warmup default reaches ~97 % on the same counter), so
        // the gate pins this operating point explicitly.
        let opts = ShardOptions {
            shards: TOLERANCE_SHARDS,
            warmup_overlap: Some(cfg.warmup_instrs),
            jobs: 1,
        };
        let run = run_sharded(&cfg, &image, FIXTURE_TRACE_SEED, &opts)
            .map_err(|e| format!("sharded run failed for {method}: {e}"))?;
        if run.merged.instrs != sequential.instrs {
            return Err(format!(
                "K={TOLERANCE_SHARDS} merged instrs {} != sequential {} for {method} \
                 (shard slicing must partition the measured window exactly)",
                run.merged.instrs, sequential.instrs
            ));
        }
        let got = counters_of(&run.merged);
        let want = counters_of(&sequential);
        for (counter, rel, abs) in &tolerances {
            let Some(i) = got.iter().position(|(n, _)| n == counter) else {
                return Err(format!(
                    "unknown counter in shard-tolerance line: {counter}"
                ));
            };
            let (g, w) = (got[i].1, want[i].1);
            let bound = abs + rel * w.abs();
            if (g - w).abs() > bound {
                let shard = worst_shard(&run.per_shard);
                return Err(format!(
                    "K={TOLERANCE_SHARDS} {counter} diverged for {method}: sharded {g} vs \
                     sequential {w} exceeds tolerance {bound:.3} \
                     (largest single-shard contribution: shard {shard})"
                ));
            }
            checked_counters += 1;
        }
    }

    let mut summary = String::new();
    let _ = write!(
        summary,
        "{exact} methods byte-identical at K=1; {} methods within \
         tolerance on {} counters at K={TOLERANCE_SHARDS}",
        TOLERANCE_METHODS.len(),
        checked_counters / TOLERANCE_METHODS.len().max(1),
    );
    Ok(summary)
}

/// Index of the shard with the most measured cycles — the best lead
/// when a tolerance breach needs a per-shard diagnosis.
fn worst_shard(per_shard: &[SimReport]) -> usize {
    per_shard
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.cycles)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn shard_parity_holds_on_the_fixture() {
        let summary = check_shard_parity().unwrap_or_else(|e| panic!("{e}"));
        println!("{summary}");
        assert!(summary.contains("byte-identical at K=1"));
    }

    #[test]
    #[ignore = "calibration probe: prints sharded-vs-sequential deltas"]
    fn print_shard_divergence() {
        let image = fixture_image();
        for method in TOLERANCE_METHODS {
            let cfg = fixture_config(method).unwrap();
            let sequential = fixture_report(&image, method, false).unwrap();
            for ov in [15_000u64, 30_000, 60_000, 120_000] {
                let opts = ShardOptions {
                    shards: TOLERANCE_SHARDS,
                    warmup_overlap: Some(ov),
                    jobs: 1,
                };
                let run = run_sharded(&cfg, &image, FIXTURE_TRACE_SEED, &opts).unwrap();
                println!("== {method} overlap {ov}");
                for ((name, g), (_, w)) in counters_of(&run.merged)
                    .iter()
                    .zip(counters_of(&sequential).iter())
                {
                    let rel = if *w != 0.0 {
                        (g - w).abs() / w.abs()
                    } else {
                        0.0
                    };
                    println!("  {name:18} sharded {g:14.3} seq {w:14.3} rel {rel:.5}");
                }
            }
        }
    }

    #[test]
    fn tolerances_are_recorded_and_well_formed() {
        let tols = shard_tolerances().expect("parse");
        assert!(
            !tols.is_empty(),
            "golden_digests.txt must carry # shard-tolerance lines"
        );
        for (counter, rel, abs) in tols {
            assert!(!counter.is_empty());
            assert!((0.0..1.0).contains(&rel), "suspicious rel for {counter}");
            assert!(abs >= 0.0, "negative abs for {counter}");
        }
    }
}
