//! Cross-prefetcher invariant checks.
//!
//! Where the lockstep harnesses ask "do reference and production agree
//! step by step?", these checks ask "do the *semantics* hold at all?"
//! — properties the paper states outright:
//!
//! * SN4L never prefetches a block whose SeqTable status bit is 0
//!   (§V-A: "SN4L looks up ... and prefetches them only if their status
//!   bits show 1");
//! * proactive chaining never accepts a trigger past depth 4 (§V-B:
//!   "our experiments show that four is a reasonable threshold");
//! * every issued prefetch lands in exactly one timeliness class, so
//!   the classes sum to `issued` (the Fig. 13 accounting);
//! * replaying the same seed — fuzzer or full simulation — is
//!   bit-identical.
//!
//! Each check returns `Ok(summary)` with the evidence it gathered, or
//! `Err(description)` pinpointing the violation.

use crate::adapters::apply_engine_op;
use crate::fuzz::{fuzz_proactive_config, Fuzzer, FUZZ_TABLE_ENTRIES};
use crate::lockstep::Model;
use crate::ops::EngineOp;
use crate::reference::RefProactive;
use dcfb_prefetch::context::MockContext;
use dcfb_prefetch::{SeqTable, Sn4l};
use dcfb_sim::{run_config, run_config_profiled, SimConfig};
use dcfb_workloads::workload;

/// The workload the simulation-level invariants run on.
const INVARIANT_WORKLOAD: &str = "Web (Apache)";

/// Instruction budget for the simulation-level invariants: small enough
/// to finish in milliseconds, long enough to issue prefetches in every
/// timeliness class.
const INVARIANT_WARMUP: u64 = 2_000;
const INVARIANT_MEASURE: u64 = 3_000;

fn invariant_config(method: &str) -> Result<SimConfig, String> {
    let mut cfg =
        SimConfig::for_method(method).ok_or_else(|| format!("unknown method {method:?}"))?;
    cfg.warmup_instrs = INVARIANT_WARMUP;
    cfg.measure_instrs = INVARIANT_MEASURE;
    Ok(cfg)
}

/// SN4L gating: drive the production SN4L over a fuzzed op stream and
/// verify that no issued prefetch targets a block whose SeqTable bit
/// was 0 when the demand arrived.
///
/// # Errors
///
/// The first gating violation (step, block, candidate window).
pub fn check_sn4l_gating(seed: u64, n_ops: usize) -> Result<String, String> {
    let mut fz = Fuzzer::new(seed);
    let layout = fz.layout();
    let ops = fz.engine_ops(&layout, n_ops);

    let mut p = Sn4l::with_table(SeqTable::new(FUZZ_TABLE_ENTRIES));
    let mut ctx = MockContext::default();
    let mut checked = 0u64;
    for (step, op) in ops.iter().enumerate() {
        // Snapshot the candidate window's status bits before the event;
        // the event itself may only set the *demanded* block's bit,
        // which never aliases block+1..block+4 in a 64-entry table.
        let snapshot: Vec<(u64, bool)> = if let EngineOp::Demand { block, .. } = op {
            (1..=4u64)
                .map(|d| (block + d, p.table().is_useful(block + d)))
                .collect()
        } else {
            Vec::new()
        };
        let seen = ctx.issued.len();
        apply_engine_op(&mut p, &mut ctx, op);
        for &(b, _) in &ctx.issued[seen..] {
            checked += 1;
            match snapshot.iter().find(|&&(cand, _)| cand == b) {
                Some(&(_, true)) => {}
                Some(&(_, false)) => {
                    return Err(format!(
                        "step {step}: SN4L prefetched block {b} whose status bit was 0 \
                         (op {op:?})"
                    ));
                }
                None => {
                    return Err(format!(
                        "step {step}: SN4L prefetched block {b} outside the \
                         next-4 window (op {op:?})"
                    ));
                }
            }
        }
    }
    let (issued, suppressed) = p.counters();
    Ok(format!(
        "{checked} issues gated correctly (issued={issued} suppressed={suppressed})"
    ))
}

/// Chain depth: run the reference proactive engine over a fuzzed op
/// stream and a dedicated deep jump chain; the deepest accepted trigger
/// must stay within the configured limit, and the deep chain must
/// actually exercise the cutoff.
///
/// # Errors
///
/// A depth-limit breach, or a deep chain that never hit the cutoff
/// (which would mean the invariant was checked vacuously).
pub fn check_chain_depth(seed: u64, n_ops: usize) -> Result<String, String> {
    let cfg = fuzz_proactive_config();
    let max_depth = cfg.max_depth;

    // Fuzzed stream.
    let mut fz = Fuzzer::new(seed);
    let layout = fz.layout();
    let ops = fz.engine_ops(&layout, n_ops);
    let mut m = RefProactive::new(cfg.clone(), layout);
    for op in &ops {
        m.apply(op);
    }
    if m.max_trigger_depth > max_depth {
        return Err(format!(
            "fuzzed run accepted a depth-{} trigger (limit {max_depth})",
            m.max_trigger_depth
        ));
    }
    let fuzzed_depth = m.max_trigger_depth;

    // Dedicated deep chain: block b jumps to b+10, twelve hops — far
    // past the limit, so the cutoff must fire.
    let mut deep_layout = crate::ops::CodeLayout::default();
    for k in 0..12u64 {
        let b = 100 + k * 10;
        deep_layout.code.insert(
            b,
            vec![dcfb_frontend::BtbEntry {
                pc: b * 64 + 4,
                target: (b + 10) * 64,
                class: dcfb_frontend::BranchClass::Jump,
            }],
        );
    }
    let mut deep = RefProactive::new(cfg, deep_layout);
    for k in 0..12u64 {
        let b = 100 + k * 10;
        deep.apply(&EngineOp::Demand {
            block: b + 10,
            hit: false,
            hit_was_prefetched: false,
            branch: Some(crate::ops::RecentBranch {
                pc: b * 64 + 4,
                target: (b + 10) * 64,
            }),
        });
        for _ in 0..4 {
            deep.apply(&EngineOp::Tick);
        }
    }
    // Re-demand the chain head and let the chain run dry.
    deep.apply(&EngineOp::Demand {
        block: 100,
        hit: false,
        hit_was_prefetched: false,
        branch: None,
    });
    for _ in 0..128 {
        deep.apply(&EngineOp::Tick);
    }
    if deep.max_trigger_depth > max_depth {
        return Err(format!(
            "deep chain accepted a depth-{} trigger (limit {max_depth})",
            deep.max_trigger_depth
        ));
    }
    if deep.depth_terminations() == 0 {
        return Err("deep chain never hit the depth cutoff — vacuous check".to_owned());
    }
    Ok(format!(
        "fuzzed max depth {fuzzed_depth} ≤ {max_depth}; deep chain cut off as required"
    ))
}

/// Timeliness accounting: run a profiled simulation and verify the
/// metrics document's structural invariants, most importantly that
/// `accurate + late + early_evicted + useless == issued` for every
/// prefetch source.
///
/// # Errors
///
/// The first row whose classes don't sum to `issued`, any other
/// [`dcfb_telemetry::MetricsDoc::validate`] failure, or a run that
/// issued no prefetches at all (vacuous).
pub fn check_timeliness_sums(seed: u64) -> Result<String, String> {
    let w = workload(INVARIANT_WORKLOAD)
        .ok_or_else(|| format!("workload {INVARIANT_WORKLOAD:?} missing from catalog"))?;
    let mut rows = 0usize;
    let mut issued_total = 0u64;
    for method in ["SN4L+Dis+BTB", "SN4L", "Dis"] {
        let cfg = invariant_config(method)?;
        let (_report, telemetry) = run_config_profiled(&w, cfg, seed);
        telemetry
            .doc
            .validate()
            .map_err(|e| format!("{method}: metrics document invalid: {e}"))?;
        for t in &telemetry.doc.timeliness {
            if t.classified() != t.issued {
                return Err(format!(
                    "{method}/{}: classes sum to {} but issued={}",
                    t.source,
                    t.classified(),
                    t.issued
                ));
            }
            rows += 1;
            issued_total += t.issued;
        }
    }
    if issued_total == 0 {
        return Err("no prefetches issued across any method — vacuous check".to_owned());
    }
    Ok(format!(
        "{rows} timeliness rows balanced ({issued_total} prefetches classified)"
    ))
}

/// Replay determinism: the same seed must reproduce bit-identical
/// results, both for the fuzzer's op streams and for a full simulation
/// run.
///
/// # Errors
///
/// A fuzzer or simulation replay that differed from its first run.
pub fn check_replay_deterministic(seed: u64, n_ops: usize) -> Result<String, String> {
    // Fuzzer replay.
    let render = |s: u64| {
        let mut fz = Fuzzer::new(s);
        let layout = fz.layout();
        format!("{layout:?} {:?}", fz.engine_ops(&layout, n_ops))
    };
    if render(seed) != render(seed) {
        return Err(format!("fuzzer replay of seed {seed} diverged"));
    }

    // Full-simulation replay.
    let w = workload(INVARIANT_WORKLOAD)
        .ok_or_else(|| format!("workload {INVARIANT_WORKLOAD:?} missing from catalog"))?;
    let cfg = invariant_config("SN4L+Dis+BTB")?;
    let a = run_config(&w, cfg.clone(), seed);
    let b = run_config(&w, cfg, seed);
    if a.digest() != b.digest() {
        return Err(format!(
            "simulation replay of seed {seed} diverged on {INVARIANT_WORKLOAD:?}"
        ));
    }
    Ok(format!(
        "fuzzer and simulation replays of seed {seed} are bit-identical"
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn sn4l_gating_holds_on_fuzzed_stream() {
        let summary = check_sn4l_gating(11, 2_000).expect("gating holds");
        assert!(summary.contains("gated correctly"), "{summary}");
    }

    #[test]
    fn chain_depth_holds_and_cutoff_fires() {
        let summary = check_chain_depth(12, 2_000).expect("depth limit holds");
        assert!(summary.contains("cut off"), "{summary}");
    }

    #[test]
    fn replay_is_deterministic() {
        check_replay_deterministic(13, 500).expect("replays identical");
    }

    #[test]
    fn timeliness_classes_sum_to_issued() {
        let summary = check_timeliness_sums(14).expect("rows balanced");
        assert!(summary.contains("balanced"), "{summary}");
    }
}
