//! # dcfb-conformance
//!
//! The conformance subsystem: executable reference models, lockstep
//! differential runs, and a deterministic trace fuzzer for the paper's
//! frontend-prefetch structures.
//!
//! The production structures in `crates/prefetch` / `crates/cache` are
//! written for the simulator's hot path; the reference models in
//! [`reference`] re-derive the same §V semantics for *obviousness* —
//! plain containers, no caching, no shared state. [`lockstep`] replays
//! identical op sequences against both sides and reports the first
//! observable mismatch, minimized by [`shrink`] into a reproducible
//! counterexample. [`fuzz`] generates the adversarial op sequences
//! (aliasing sets, wrap-around offsets, call/return chains,
//! discontinuity storms) deterministically from a seed, and
//! [`invariants`] checks the cross-cutting properties the paper states
//! outright (SeqTable gating, the depth-4 chain cutoff, timeliness
//! accounting, replay determinism), and [`golden`] replays one
//! fixed-seed trace through every method in the prefetch registry and
//! pins the report digests bit-for-bit against checked-in goldens.
//!
//! [`run_full_suite`] packages all of it behind one call; the
//! `dcfb conformance` CLI subcommand is a thin wrapper around it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod fuzz;
pub mod golden;
pub mod invariants;
pub mod lockstep;
pub mod mutate;
pub mod ops;
pub mod reference;
pub mod shard;
pub mod shrink;
pub mod workload_source;

pub use campaign::{Campaign, CampaignConfig};
pub use coverage::CoverageMap;
pub use fuzz::Fuzzer;
pub use lockstep::{Counterexample, Divergence, Harness, Model};
pub use shrink::shrink;

use crate::adapters::{ProdBtbBuffer, ProdDisTable, ProdPrefetchBuffer, ProdRlu, ProdSeqTable};
use crate::fuzz::{FUZZ_BTB_BUF, FUZZ_PF_BUFFER_CAPACITY, FUZZ_TABLE_ENTRIES};
use crate::reference::{RefBtbBuffer, RefDisTable, RefPrefetchBuffer, RefRlu, RefSeqTable, RefTag};
use dcfb_cache::PrefetchBuffer;
use dcfb_prefetch::{BtbPrefetchBuffer, DisTable, Rlu, SeqTable, TagPolicy};
use std::fmt::Debug;

/// Outcome of one conformance check.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Check name, e.g. `lockstep/sn4l` or `invariant/chain-depth`.
    pub name: String,
    /// Whether the check passed.
    pub passed: bool,
    /// Evidence on success, the failure (often a shrunk
    /// counterexample) otherwise.
    pub detail: String,
}

/// Everything one `run_full_suite` call produced.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// The seed every generator was derived from.
    pub seed: u64,
    /// Ops fed to each lockstep harness.
    pub ops_per_structure: usize,
    /// All check outcomes, in execution order.
    pub checks: Vec<CheckResult>,
}

impl ConformanceReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failed checks.
    pub fn failures(&self) -> Vec<&CheckResult> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Renders the human-readable report table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "conformance: seed={} ops={} checks={}\n",
            self.seed,
            self.ops_per_structure,
            self.checks.len()
        ));
        for c in &self.checks {
            let mark = if c.passed { "PASS" } else { "FAIL" };
            out.push_str(&format!("  [{mark}] {:<28} {}\n", c.name, c.detail));
        }
        let failed = self.failures().len();
        if failed == 0 {
            out.push_str("all checks passed\n");
        } else {
            out.push_str(&format!("{failed} check(s) FAILED\n"));
        }
        out
    }
}

fn lockstep_result<Op: Clone + Debug>(h: &Harness<Op>, ops: &[Op]) -> CheckResult {
    match h.check(ops) {
        Ok(()) => CheckResult {
            name: format!("lockstep/{}", h.name()),
            passed: true,
            detail: format!("{} ops, zero divergences", ops.len()),
        },
        Err(ce) => CheckResult {
            name: format!("lockstep/{}", h.name()),
            passed: false,
            detail: format!("\n{ce}"),
        },
    }
}

fn invariant_result(name: &str, outcome: Result<String, String>) -> CheckResult {
    match outcome {
        Ok(detail) => CheckResult {
            name: format!("invariant/{name}"),
            passed: true,
            detail,
        },
        Err(detail) => CheckResult {
            name: format!("invariant/{name}"),
            passed: false,
            detail,
        },
    }
}

/// Runs every lockstep harness over `n_ops` freshly fuzzed ops, then
/// the cross-prefetcher invariant checks, digest parity, and the
/// sharded-execution parity gate. Everything derives deterministically
/// from `seed`.
pub fn run_full_suite(seed: u64, n_ops: usize) -> ConformanceReport {
    let mut checks = Vec::new();
    let mut fz = Fuzzer::new(seed);

    // ---- table/buffer-level lockstep ----
    let h = Harness::new("seq-table", || {
        (
            Box::new(RefSeqTable::new(FUZZ_TABLE_ENTRIES)) as _,
            Box::new(ProdSeqTable(SeqTable::new(FUZZ_TABLE_ENTRIES))) as _,
        )
    });
    checks.push(lockstep_result(&h, &fz.seq_ops(n_ops)));

    let h = Harness::new("dis-table", || {
        (
            Box::new(RefDisTable::new(FUZZ_TABLE_ENTRIES, RefTag::Partial(4))) as _,
            Box::new(ProdDisTable(DisTable::new(
                FUZZ_TABLE_ENTRIES,
                TagPolicy::Partial(4),
                4,
            ))) as _,
        )
    });
    checks.push(lockstep_result(&h, &fz.dis_table_ops(n_ops)));

    let h = Harness::new("rlu", || {
        (
            Box::new(RefRlu::new(8)) as _,
            Box::new(ProdRlu(Rlu::new(8))) as _,
        )
    });
    checks.push(lockstep_result(&h, &fz.rlu_ops(n_ops)));

    let h = Harness::new("btb-buffer", || {
        (
            Box::new(RefBtbBuffer::new(FUZZ_BTB_BUF.0, FUZZ_BTB_BUF.1)) as _,
            Box::new(ProdBtbBuffer(BtbPrefetchBuffer::new(
                FUZZ_BTB_BUF.0,
                FUZZ_BTB_BUF.1,
            ))) as _,
        )
    });
    checks.push(lockstep_result(&h, &fz.btb_buf_ops(n_ops)));

    let h = Harness::new("prefetch-buffer", || {
        (
            Box::new(RefPrefetchBuffer::new(FUZZ_PF_BUFFER_CAPACITY)) as _,
            Box::new(ProdPrefetchBuffer(PrefetchBuffer::new(
                FUZZ_PF_BUFFER_CAPACITY,
            ))) as _,
        )
    });
    checks.push(lockstep_result(&h, &fz.pf_buf_ops(n_ops)));

    // ---- engine-level lockstep (shared adversarial layout; the same
    // harness trio the fuzz campaign evaluates against) ----
    let layout = fz.layout();
    for h in campaign::engine_harnesses(&layout) {
        checks.push(lockstep_result(&h, &fz.engine_ops(&layout, n_ops)));
    }

    // ---- cross-prefetcher invariants ----
    checks.push(invariant_result(
        "sn4l-gating",
        invariants::check_sn4l_gating(seed, n_ops),
    ));
    checks.push(invariant_result(
        "chain-depth",
        invariants::check_chain_depth(seed, n_ops),
    ));
    checks.push(invariant_result(
        "timeliness-sums",
        invariants::check_timeliness_sums(seed),
    ));
    checks.push(invariant_result(
        "replay-deterministic",
        invariants::check_replay_deterministic(seed, n_ops.min(2_000)),
    ));
    // ---- whole-simulator digest parity vs checked-in goldens ----
    checks.push(invariant_result(
        "digest-parity",
        golden::check_digest_parity(),
    ));
    // ---- sharded-vs-sequential parity (exact at K=1, tolerance
    // above; see DESIGN.md "Sharded execution & stitching") ----
    checks.push(invariant_result(
        "shard-parity",
        shard::check_shard_parity(),
    ));
    // ---- checked-in minimized fuzz corpus still passes lockstep ----
    checks.push(invariant_result(
        "corpus-replay",
        corpus::check_corpus_replay(),
    ));
    // ---- workload-source registry parity: synthetics via the
    // resolution layer byte-match the goldens; the blessed tenant-mix
    // digest holds sequentially, at K=1, and across --jobs ----
    checks.push(invariant_result(
        "workload-source",
        workload_source::check_workload_source(),
    ));

    ConformanceReport {
        seed,
        ops_per_structure: n_ops,
        checks,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_passes_and_renders() {
        let report = run_full_suite(5, 300);
        let rendered = report.render();
        assert!(report.passed(), "conformance suite failed:\n{rendered}");
        assert_eq!(report.checks.len(), 16);
        assert!(rendered.contains("lockstep/proactive"));
        assert!(rendered.contains("invariant/digest-parity"));
        assert!(rendered.contains("invariant/shard-parity"));
        assert!(rendered.contains("invariant/corpus-replay"));
        assert!(rendered.contains("invariant/workload-source"));
        assert!(rendered.contains("all checks passed"));
    }
}
