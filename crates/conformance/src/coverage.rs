//! The behavioral coverage map.
//!
//! Fuzzing the lockstep harnesses with a blind generator replays the
//! same adversarial families forever; the campaign in [`crate::corpus`]
//! needs to know whether an input exercised anything *new*. Coverage
//! here is behavioral, not structural: a fixed-width array of event
//! slots fed by the reference models (per-structure events — issues,
//! evictions, wrap-around offsets, partial-tag alias hits, queue
//! overflows, chain-depth cutoffs, pre-decode recoveries), with the
//! per-input event counts bucketed log2 the way AFL buckets edge hits.
//! An input's coverage is the set of `(slot, bucket)` bits it lit; the
//! campaign map is the bitwise OR over all evaluated inputs. Everything
//! is a pure function of the op sequence, allocation-light, and merges
//! associatively, so sharded campaigns can fold per-input maps in
//! candidate order and land on the same final map at any job count.

use crate::fuzz::fuzz_proactive_config;
use crate::lockstep::Model;
use crate::ops::{CodeLayout, EngineOp};
use crate::reference::{ProactiveStats, RefProactive};
use dcfb_trace::{block_of, block_offset, Block};
use std::fmt::Write as _;

/// Number of behavioral event slots (one per named event below).
pub const COVERAGE_SLOTS: usize = 42;

/// Log2 count buckets per slot (1, 2–3, 4–7, 8–15, 16–31, 32–127,
/// 128–511, 512+).
pub const COUNT_BUCKETS: usize = 8;

/// Total coverage bits: every `(slot, bucket)` pair.
pub const COVERAGE_BITS: usize = COVERAGE_SLOTS * COUNT_BUCKETS;

// Op-shape events (derived from the op itself).
const DEMAND_HIT: usize = 0;
const DEMAND_MISS: usize = 1;
const DEMAND_HIT_PREFETCHED: usize = 2;
const DEMAND_WITH_BRANCH: usize = 3;
const FILL_DEMAND: usize = 4;
const FILL_PREFETCH: usize = 5;
const EVICT_CLEAN: usize = 6;
const EVICT_USELESS: usize = 7;
// Block-family events (which adversarial family the op touched).
const FAM_CHAIN: usize = 8;
const FAM_CHAIN_OVERRUN: usize = 9;
const FAM_ALIAS: usize = 10;
const FAM_STORM: usize = 11;
const FAM_INDIRECT: usize = 12;
const FAM_ALIAS_TARGET: usize = 13;
const FAM_DENSE: usize = 14;
const FAM_FAR: usize = 15;
// Branch-shape events.
const WRAP_AROUND_BRANCH: usize = 16;
const PHANTOM_BRANCH: usize = 17;
// Engine events (diffed from [`ProactiveStats`] snapshots).
const SEQ_ISSUE: usize = 18;
const DIS_ISSUE: usize = 19;
const RLU_FILTERED: usize = 20;
const RLU_HIT: usize = 21;
const RLU_MISS: usize = 22;
const QUEUE_OVERFLOW: usize = 23;
const DEPTH_CUTOFF: usize = 24;
const PREDECODE: usize = 25;
const DIS_RECORD: usize = 26;
const ALIAS_DECODE_MISMATCH: usize = 27;
const UNRESOLVED_INDIRECT: usize = 28;
// Chain-depth watermarks (max trigger depth reached d).
const DEPTH_BASE: usize = 29; // 29..=32 for depths 1..=4
                              // Queue-occupancy events (sampled after every op): busy (≥1),
                              // half (≥capacity/2), full (=capacity), per queue.
const SEQ_Q_BASE: usize = 33;
const DIS_Q_BASE: usize = 36;
const RLU_Q_BASE: usize = 39;

/// Human-readable slot names, in slot order (DESIGN.md documents the
/// same layout).
pub const SLOT_NAMES: [&str; COVERAGE_SLOTS] = [
    "demand-hit",
    "demand-miss",
    "demand-hit-prefetched",
    "demand-with-branch",
    "fill-demand",
    "fill-prefetch",
    "evict-clean",
    "evict-useless",
    "fam-chain",
    "fam-chain-overrun",
    "fam-alias",
    "fam-storm",
    "fam-indirect",
    "fam-alias-target",
    "fam-dense",
    "fam-far",
    "wrap-around-branch",
    "phantom-branch",
    "seq-issue",
    "dis-issue",
    "rlu-filtered",
    "rlu-hit",
    "rlu-miss",
    "queue-overflow",
    "depth-cutoff",
    "predecode",
    "dis-record",
    "alias-decode-mismatch",
    "unresolved-indirect",
    "depth-1",
    "depth-2",
    "depth-3",
    "depth-4",
    "seq-q-busy",
    "seq-q-half",
    "seq-q-full",
    "dis-q-busy",
    "dis-q-half",
    "dis-q-full",
    "rlu-q-busy",
    "rlu-q-half",
    "rlu-q-full",
];

/// The log2 bucket a per-input event count falls in.
fn bucket_of(count: u32) -> u8 {
    match count {
        0 => unreachable!("bucket_of is only called for counts >= 1"),
        1 => 0,
        2..=3 => 1,
        4..=7 => 2,
        8..=15 => 3,
        16..=31 => 4,
        32..=127 => 5,
        128..=511 => 6,
        _ => 7,
    }
}

/// A fixed-width coverage bitmap: one byte per slot, one bit per count
/// bucket. Merging is bitwise OR, so folds are associative and
/// order-independent — the campaign still folds in candidate order for
/// clarity, but any order lands on the same map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverageMap {
    bits: [u8; COVERAGE_SLOTS],
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap {
            bits: [0; COVERAGE_SLOTS],
        }
    }
}

impl CoverageMap {
    /// The all-empty map.
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Builds the map from per-slot event counts (one input's worth).
    pub fn from_counts(counts: &[u32; COVERAGE_SLOTS]) -> Self {
        let mut bits = [0u8; COVERAGE_SLOTS];
        for (b, &c) in bits.iter_mut().zip(counts.iter()) {
            if c > 0 {
                *b = 1 << bucket_of(c);
            }
        }
        CoverageMap { bits }
    }

    /// Folds `other` in (bitwise OR).
    pub fn merge(&mut self, other: &CoverageMap) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }

    /// Total `(slot, bucket)` bits set.
    pub fn bit_count(&self) -> u32 {
        self.bits.iter().map(|b| b.count_ones()).sum()
    }

    /// Slots with at least one bucket hit.
    pub fn slot_count(&self) -> u32 {
        self.bits.iter().filter(|b| **b != 0).count() as u32
    }

    /// Fraction of the [`COVERAGE_SLOTS`] event slots hit, in [0, 1].
    pub fn slot_fraction(&self) -> f64 {
        f64::from(self.slot_count()) / COVERAGE_SLOTS as f64
    }

    /// Whether `self` lights any bit `base` does not.
    pub fn has_novel_bits_over(&self, base: &CoverageMap) -> bool {
        self.bits
            .iter()
            .zip(base.bits.iter())
            .any(|(a, b)| a & !b != 0)
    }

    /// How many bits `self` lights that `base` does not.
    pub fn novel_bits_over(&self, base: &CoverageMap) -> u32 {
        self.bits
            .iter()
            .zip(base.bits.iter())
            .map(|(a, b)| (a & !b).count_ones())
            .sum()
    }

    /// Hex rendering of the raw bitmap — doubles as the canonical
    /// digest (two hex chars per slot, slot order).
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(COVERAGE_SLOTS * 2);
        for b in &self.bits {
            let _ = write!(out, "{b:02x}");
        }
        out
    }

    /// Parses a [`to_hex`](Self::to_hex) rendering.
    ///
    /// # Errors
    ///
    /// A one-line description when the string is not exactly
    /// `2 * COVERAGE_SLOTS` hex chars.
    pub fn from_hex(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.len() != COVERAGE_SLOTS * 2 {
            return Err(format!(
                "coverage hex must be {} chars, got {}",
                COVERAGE_SLOTS * 2,
                s.len()
            ));
        }
        let mut bits = [0u8; COVERAGE_SLOTS];
        for (i, b) in bits.iter_mut().enumerate() {
            let pair = s
                .get(2 * i..2 * i + 2)
                .ok_or_else(|| "coverage hex is not ASCII".to_owned())?;
            *b = u8::from_str_radix(pair, 16)
                .map_err(|e| format!("coverage hex byte {i} ({pair:?}): {e}"))?;
        }
        Ok(CoverageMap { bits })
    }

    /// The slots hit, by name (diagnostics / DESIGN examples).
    pub fn hit_slot_names(&self) -> Vec<&'static str> {
        self.bits
            .iter()
            .zip(SLOT_NAMES.iter())
            .filter(|(b, _)| **b != 0)
            .map(|(_, n)| *n)
            .collect()
    }
}

/// Which adversarial layout family a block belongs to (the families the
/// PR-4 generator builds; see [`crate::fuzz::Fuzzer::layout`]).
fn family_slot(block: Block) -> usize {
    match block {
        1000..=1031 => FAM_CHAIN,
        1032..=1035 => FAM_CHAIN_OVERRUN,
        b if (8..=8 + 7 * 64).contains(&b) && (b - 8).is_multiple_of(64) => FAM_ALIAS,
        500..=515 => FAM_STORM,
        700..=707 => FAM_INDIRECT,
        300..=315 => FAM_ALIAS_TARGET,
        0..=63 => FAM_DENSE,
        _ => FAM_FAR,
    }
}

/// Streams an op sequence through an instrumented [`RefProactive`] and
/// accumulates behavioral event counts. One probe per input; the
/// campaign buckets the counts into a [`CoverageMap`] when the input
/// ends.
pub struct CoverageProbe {
    engine: RefProactive,
    layout: CodeLayout,
    prev: ProactiveStats,
    counts: [u32; COVERAGE_SLOTS],
    ops: u64,
}

impl CoverageProbe {
    /// Creates a probe over the fuzz-scale proactive configuration and
    /// the given program layout.
    pub fn new(layout: &CodeLayout) -> Self {
        let engine = RefProactive::new(fuzz_proactive_config(), layout.clone());
        let prev = engine.stats();
        CoverageProbe {
            engine,
            layout: layout.clone(),
            prev,
            counts: [0; COVERAGE_SLOTS],
            ops: 0,
        }
    }

    fn bump(&mut self, slot: usize, by: u64) {
        if by > 0 {
            let c = &mut self.counts[slot];
            *c = c.saturating_add(u32::try_from(by).unwrap_or(u32::MAX));
        }
    }

    /// Feeds one op: records its shape, replays it on the reference
    /// engine, and diffs the counter snapshot into engine events.
    pub fn feed(&mut self, op: &EngineOp) {
        self.ops += 1;
        match op {
            EngineOp::Demand {
                block,
                hit,
                hit_was_prefetched,
                branch,
            } => {
                self.bump(if *hit { DEMAND_HIT } else { DEMAND_MISS }, 1);
                if *hit_was_prefetched {
                    self.bump(DEMAND_HIT_PREFETCHED, 1);
                }
                self.bump(family_slot(*block), 1);
                if let Some(b) = branch {
                    self.bump(DEMAND_WITH_BRANCH, 1);
                    let offset = block_offset(b.pc);
                    if offset == 60 {
                        self.bump(WRAP_AROUND_BRANCH, 1);
                    }
                    if self
                        .layout
                        .decode_branch_at(block_of(b.pc), offset)
                        .is_none()
                    {
                        self.bump(PHANTOM_BRANCH, 1);
                    }
                }
            }
            EngineOp::Fill {
                block,
                was_prefetch,
            } => {
                self.bump(
                    if *was_prefetch {
                        FILL_PREFETCH
                    } else {
                        FILL_DEMAND
                    },
                    1,
                );
                self.bump(family_slot(*block), 1);
            }
            EngineOp::Evict { block, useless } => {
                self.bump(if *useless { EVICT_USELESS } else { EVICT_CLEAN }, 1);
                self.bump(family_slot(*block), 1);
            }
            EngineOp::Tick => {}
        }

        let _ = self.engine.apply(op);
        let now = self.engine.stats();
        let prev = self.prev;
        self.bump(SEQ_ISSUE, now.seq_issued - prev.seq_issued);
        self.bump(DIS_ISSUE, now.dis_issued - prev.dis_issued);
        self.bump(RLU_FILTERED, now.rlu_filtered - prev.rlu_filtered);
        self.bump(RLU_HIT, now.rlu_hits - prev.rlu_hits);
        self.bump(RLU_MISS, now.rlu_misses - prev.rlu_misses);
        self.bump(QUEUE_OVERFLOW, now.queue_drops - prev.queue_drops);
        self.bump(
            DEPTH_CUTOFF,
            now.depth_terminations - prev.depth_terminations,
        );
        self.bump(PREDECODE, now.predecoded - prev.predecoded);
        self.bump(DIS_RECORD, now.dis_records - prev.dis_records);
        self.bump(
            ALIAS_DECODE_MISMATCH,
            now.decode_mismatches - prev.decode_mismatches,
        );
        self.bump(
            UNRESOLVED_INDIRECT,
            now.unresolved_indirects - prev.unresolved_indirects,
        );
        for d in prev.max_trigger_depth + 1..=now.max_trigger_depth {
            if (1..=4).contains(&d) {
                self.bump(DEPTH_BASE + usize::from(d) - 1, 1);
            }
        }
        let cap = self.engine.queue_capacity();
        for (len, base) in [
            (now.seq_q, SEQ_Q_BASE),
            (now.dis_q, DIS_Q_BASE),
            (now.rlu_q, RLU_Q_BASE),
        ] {
            if len >= 1 {
                self.bump(base, 1);
            }
            if len >= cap.div_ceil(2) {
                self.bump(base + 1, 1);
            }
            if len >= cap {
                self.bump(base + 2, 1);
            }
        }
        self.prev = now;
    }

    /// Ops fed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Buckets the accumulated counts into this input's coverage map.
    pub fn map(&self) -> CoverageMap {
        CoverageMap::from_counts(&self.counts)
    }
}

/// The coverage map of one op sequence over `layout` (fresh engine,
/// whole sequence, one bucketing).
pub fn coverage_of(layout: &CodeLayout, ops: &[EngineOp]) -> CoverageMap {
    let mut probe = CoverageProbe::new(layout);
    for op in ops {
        probe.feed(op);
    }
    probe.map()
}

/// The PR-4 fixed-seed generator baseline: the coverage of one
/// continuous `total_ops`-long generated sequence from `seed` —
/// exactly what `dcfb conformance` replays. Campaigns must strictly
/// exceed this at equal op budget to justify their existence; the
/// `dcfb fuzz --quick` smoke asserts it. Streams in chunks so multi-M
/// budgets never materialize the whole sequence.
pub fn baseline_coverage(seed: u64, total_ops: u64) -> CoverageMap {
    let mut fz = crate::fuzz::Fuzzer::new(seed);
    let layout = fz.layout();
    let mut probe = CoverageProbe::new(&layout);
    let mut left = total_ops;
    while left > 0 {
        let chunk = left.min(4096) as usize;
        for op in fz.engine_ops(&layout, chunk) {
            probe.feed(&op);
        }
        left -= chunk as u64;
    }
    probe.map()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::fuzz::Fuzzer;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(15), 3);
        assert_eq!(bucket_of(16), 4);
        assert_eq!(bucket_of(127), 5);
        assert_eq!(bucket_of(511), 6);
        assert_eq!(bucket_of(u32::MAX), 7);
    }

    #[test]
    fn slot_names_cover_every_slot_uniquely() {
        let mut names: Vec<&str> = SLOT_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COVERAGE_SLOTS, "duplicate slot name");
    }

    #[test]
    fn coverage_is_deterministic_and_merge_is_or() {
        let mut fz = Fuzzer::new(11);
        let layout = fz.layout();
        let ops = fz.engine_ops(&layout, 500);
        let a = coverage_of(&layout, &ops);
        let b = coverage_of(&layout, &ops);
        assert_eq!(a, b, "same ops, same map");
        assert!(a.bit_count() > 0);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, a, "self-merge is identity");
        assert!(!a.has_novel_bits_over(&merged));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let mut fz = Fuzzer::new(3);
        let layout = fz.layout();
        let ops = fz.engine_ops(&layout, 800);
        let map = coverage_of(&layout, &ops);
        let hex = map.to_hex();
        assert_eq!(hex.len(), COVERAGE_SLOTS * 2);
        assert_eq!(CoverageMap::from_hex(&hex).unwrap(), map);
        assert!(CoverageMap::from_hex("zz").is_err());
        assert!(CoverageMap::from_hex(&hex[1..]).is_err());
        let mut bad = hex;
        bad.replace_range(0..2, "zz");
        assert!(CoverageMap::from_hex(&bad).is_err());
    }

    #[test]
    fn generator_run_hits_the_interesting_slots() {
        // 10k generated ops must light the events the families were
        // built to provoke: issues, filtering, overflow, chain depth,
        // alias mismatches, wrap-around branches.
        let map = baseline_coverage(0xDCFB, 10_000);
        let hit = map.hit_slot_names();
        for want in [
            "demand-miss",
            "seq-issue",
            "dis-issue",
            "rlu-filtered",
            "queue-overflow",
            "depth-cutoff",
            "alias-decode-mismatch",
            "unresolved-indirect",
            "wrap-around-branch",
            "fam-alias",
        ] {
            assert!(hit.contains(&want), "missing {want}; hit: {hit:?}");
        }
        assert!(map.slot_fraction() > 0.5, "{}", map.slot_fraction());
    }

    #[test]
    fn baseline_streaming_matches_single_shot() {
        // The chunked baseline must equal a one-shot generation of the
        // same budget (rng consumption is sequential either way).
        let mut fz = Fuzzer::new(9);
        let layout = fz.layout();
        let ops = fz.engine_ops(&layout, 6000);
        assert_eq!(baseline_coverage(9, 6000), coverage_of(&layout, &ops));
    }

    #[test]
    fn novelty_detects_new_bits() {
        let mut fz = Fuzzer::new(5);
        let layout = fz.layout();
        let small = coverage_of(&layout, &fz.engine_ops(&layout, 20));
        let mut fz2 = Fuzzer::new(5);
        let layout2 = fz2.layout();
        let big = coverage_of(&layout2, &fz2.engine_ops(&layout2, 5_000));
        assert!(big.has_novel_bits_over(&small));
        assert!(big.novel_bits_over(&small) > 0);
        assert_eq!(small.novel_bits_over(&small), 0);
    }
}
