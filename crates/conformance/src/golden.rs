//! Digest-parity check: replays one fixed-seed trace through every
//! method in the `dcfb-prefetch` registry and compares each
//! [`SimReport::digest`](dcfb_sim::SimReport) against the checked-in
//! goldens in `golden_digests.txt`.
//!
//! The digests pin the simulator's observable behavior bit-for-bit, so
//! any timing-model change — intended or not — fails this check until
//! the goldens are re-blessed. To re-bless after an intentional change:
//!
//! ```text
//! DCFB_BLESS=1 cargo test -p dcfb-conformance golden
//! ```

use dcfb_sim::{SimConfig, Simulator};
use dcfb_trace::IsaMode;
use dcfb_workloads::{ProgramImage, Walker, WorkloadParams};
use std::fmt::Write as _;
use std::sync::Arc;

/// The checked-in goldens: one `<method>\t<digest>` line per registry
/// method, captured on the fixture below.
const GOLDEN: &str = include_str!("golden_digests.txt");

/// Builds the fixed-seed fixture program (the same image the simulator
/// test suite uses: big enough to thrash the shrunken L1i). Public so
/// external harnesses (the chaos campaign) can run the same fixture
/// their golden checks are pinned to.
pub fn fixture_image() -> Arc<ProgramImage> {
    let params = WorkloadParams {
        functions: 500,
        root_functions: 32,
        zipf_s: 0.9,
        ..WorkloadParams::default()
    };
    Arc::new(ProgramImage::build(&params, 3, IsaMode::Fixed4))
}

/// The fixture trace seed every golden digest was captured with.
pub const FIXTURE_TRACE_SEED: u64 = 5;

/// The fixture configuration for `method`: the golden-digest window
/// and the shrunken L1i every checked-in digest was captured with.
pub fn fixture_config(method: &str) -> Result<SimConfig, String> {
    let mut cfg =
        SimConfig::for_method(method).ok_or_else(|| format!("unknown method {method:?}"))?;
    cfg.warmup_instrs = 60_000;
    cfg.measure_instrs = 120_000;
    // Shrink the L1i so the fixture thrashes it (same reasoning as the
    // simulator tests: the paper's phenomena need instruction-bound
    // workloads).
    cfg.l1i = dcfb_cache::CacheConfig::from_kib(8, 8);
    Ok(cfg)
}

/// Runs `method` on the fixture and returns the report digest.
pub fn fixture_digest(
    image: &Arc<ProgramImage>,
    method: &str,
    telemetry: bool,
) -> Result<String, String> {
    Ok(fixture_report(image, method, telemetry)?.digest())
}

/// Runs `method` on the fixture and returns the full report.
pub fn fixture_report(
    image: &Arc<ProgramImage>,
    method: &str,
    telemetry: bool,
) -> Result<dcfb_sim::SimReport, String> {
    let mut cfg = fixture_config(method)?;
    cfg.telemetry = telemetry;
    let mut sim = Simulator::try_new(cfg, Arc::clone(image)).map_err(|e| e.to_string())?;
    let mut walker = Walker::new(Arc::clone(image), FIXTURE_TRACE_SEED);
    Ok(sim.run(&mut walker))
}

/// The checked-in `(method, digest)` golden pairs, in file order.
pub fn goldens() -> Result<Vec<(&'static str, &'static str)>, String> {
    parse_goldens()
}

fn parse_goldens() -> Result<Vec<(&'static str, &'static str)>, String> {
    GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| {
            l.split_once('\t')
                .ok_or_else(|| format!("malformed golden line: {l:?}"))
        })
        .collect()
}

/// The blessed tenant-mix digest: the `# tenant-mix\t<digest>`
/// annotation line, captured by `bless` on the spec pinned in
/// [`crate::workload_source::TENANT_MIX_SPEC`].
pub fn tenant_mix_golden() -> Result<&'static str, String> {
    GOLDEN
        .lines()
        .find_map(|l| l.strip_prefix("# tenant-mix\t"))
        .ok_or_else(|| "no `# tenant-mix` golden line (bless with DCFB_BLESS=1)".to_owned())
}

/// The `# shard-tolerance` annotations recorded alongside the exact
/// goldens: `(counter, relative, absolute)` bounds the sharded-run
/// parity check applies where warmup-overlap makes byte-identity
/// impossible (K > 1).
pub fn shard_tolerances() -> Result<Vec<(&'static str, f64, f64)>, String> {
    GOLDEN
        .lines()
        .filter_map(|l| l.strip_prefix("# shard-tolerance\t"))
        .map(|rest| {
            let mut parts = rest.split('\t');
            let counter = parts.next().unwrap_or_default();
            let rel = parts.next().and_then(|s| s.parse::<f64>().ok());
            let abs = parts.next().and_then(|s| s.parse::<f64>().ok());
            match (rel, abs) {
                (Some(rel), Some(abs)) if !counter.is_empty() => Ok((counter, rel, abs)),
                _ => Err(format!("malformed shard-tolerance line: {rest:?}")),
            }
        })
        .collect()
}

/// Replays the fixture through every registry method and diffs the
/// digests against the checked-in goldens.
///
/// Returns `Ok(summary)` when every method matches, `Err(detail)`
/// naming each offending method otherwise. Also fails if the registry
/// and the golden file disagree about which methods exist, so adding a
/// registry row forces a (deliberate) golden update.
pub fn check_digest_parity() -> Result<String, String> {
    let goldens = parse_goldens()?;
    let image = fixture_image();
    let mut mismatched = Vec::new();
    let mut checked = 0usize;
    for (method, want) in &goldens {
        let got = fixture_digest(&image, method, false)?;
        if got != *want {
            mismatched.push(*method);
        }
        checked += 1;
    }
    let missing: Vec<&str> = dcfb_prefetch::method_names()
        .filter(|m| !goldens.iter().any(|(g, _)| g == m))
        .collect();
    if !mismatched.is_empty() || !missing.is_empty() {
        let mut msg = String::new();
        if !mismatched.is_empty() {
            let _ = write!(msg, "digest mismatch for: {}", mismatched.join(", "));
        }
        if !missing.is_empty() {
            if !msg.is_empty() {
                msg.push_str("; ");
            }
            let _ = write!(
                msg,
                "no golden for registry method(s): {}",
                missing.join(", ")
            );
        }
        msg.push_str(" (re-bless with DCFB_BLESS=1 if the change is intentional)");
        return Err(msg);
    }
    Ok(format!("{checked} methods byte-identical to goldens"))
}

/// Recomputes every golden digest and rewrites `golden_digests.txt` in
/// the source tree. Only called from the test harness when `DCFB_BLESS`
/// is set.
pub fn bless() -> Result<String, String> {
    let image = fixture_image();
    let mut out = String::new();
    for method in dcfb_prefetch::method_names() {
        let digest = fixture_digest(&image, method, false)?;
        let _ = writeln!(out, "{method}\t{digest}");
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/src/golden_digests.txt");
    // Preserve `#` annotation lines (the shard tolerances): blessing
    // recaptures the exact digests, not the documented tolerances. The
    // `# tenant-mix` digest IS an exact golden, so recapture it too.
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| GOLDEN.to_owned());
    for line in existing.lines() {
        if line.trim_start().starts_with('#') && !line.starts_with("# tenant-mix\t") {
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(
        out,
        "# tenant-mix\t{}",
        crate::workload_source::tenant_mix_digest()?
    );
    std::fs::write(path, &out).map_err(|e| format!("write {path}: {e}"))?;
    Ok(format!("blessed {path}"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn golden_digest_parity() {
        if std::env::var_os("DCFB_BLESS").is_some() {
            let msg = bless().expect("bless");
            println!("{msg}");
            return;
        }
        let summary = check_digest_parity().unwrap_or_else(|e| panic!("{e}"));
        println!("{summary}");
    }

    #[test]
    fn telemetry_does_not_perturb_digests() {
        // The refactor gate requires byte-identical digests with
        // telemetry on AND off; spot-check one method per driver style
        // plus a composition (the full sweep runs telemetry-off above).
        let image = fixture_image();
        for m in ["SN4L+Dis+BTB", "Shotgun", "N2L+Dis"] {
            let off = fixture_digest(&image, m, false).expect(m);
            let on = fixture_digest(&image, m, true).expect(m);
            assert_eq!(off, on, "telemetry perturbs the run for {m}");
        }
    }

    #[test]
    fn goldens_cover_the_registry_exactly() {
        let goldens = parse_goldens().expect("well-formed goldens");
        let names: Vec<&str> = dcfb_prefetch::method_names().collect();
        for (g, digest) in &goldens {
            assert!(names.contains(g), "stale golden for {g}");
            assert!(digest.starts_with("SimReport {"), "odd digest for {g}");
        }
        assert_eq!(goldens.len(), names.len(), "golden/registry drift");
    }
}
