//! The coverage-guided campaign: planning, evaluation, ordered merge.
//!
//! A campaign runs in rounds. Each round *plans* a batch of candidate
//! inputs — fresh generator sequences or corpus mutations, every
//! candidate a pure function of `(seed, round, index)` and the corpus
//! as of the round start — then *evaluates* each candidate (coverage
//! probe + lockstep through every engine harness; [`evaluate`] is a
//! pure function, safe to fan out across a worker pool), and finally
//! *absorbs* the outcomes in candidate order: coverage maps merge into
//! the campaign map, novel inputs are admitted to the corpus and
//! ddmin-minimized, and the first divergence is captured as a shrunk
//! counterexample. Because planning never looks at the job count and
//! absorption is ordered, `--jobs J` changes wall-clock only: the
//! final corpus digest and coverage map are bit-identical at any `J`.
//!
//! The pooled driver lives in `dcfb-bench` (which owns the PR-2
//! `parallel_map` worker pool and the PR-1 checkpoint machinery);
//! this module keeps the deterministic core dependency-free so the
//! bench crate can keep depending on conformance, not the reverse.

use crate::adapters::{ProdDis, ProdProactive, ProdSn4l};
use crate::corpus::Corpus;
use crate::coverage::{coverage_of, CoverageMap};
use crate::fuzz::{derive_seed, fuzz_proactive_config, Fuzzer, FUZZ_TABLE_ENTRIES};
use crate::lockstep::{Counterexample, Harness};
use crate::mutate::Mutator;
use crate::ops::{CodeLayout, EngineOp};
use crate::reference::{RefDisEngine, RefProactive, RefSn4l};
use dcfb_telemetry::{CounterSet, Ctr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Campaign shape: seed, total op budget, candidate sizing.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Master seed: layout, generators, and mutators all derive from
    /// it.
    pub seed: u64,
    /// Total ops to spend across all candidates (the `--ops` budget).
    pub total_ops: u64,
    /// Target length of a fresh candidate (mutated children vary).
    pub input_len: usize,
    /// Candidates planned per round (absorption is the only barrier).
    pub batch_size: usize,
}

impl CampaignConfig {
    /// The standard campaign shape for a given budget.
    pub fn standard(seed: u64, total_ops: u64) -> Self {
        CampaignConfig {
            seed,
            total_ops,
            input_len: 256,
            batch_size: 64,
        }
    }

    /// The bounded `--quick` smoke shape: small fixed budget, small
    /// inputs — finishes in well under a second.
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            seed,
            total_ops: 40_000,
            input_len: 128,
            batch_size: 32,
        }
    }

    /// Validates the shape.
    ///
    /// # Errors
    ///
    /// A one-line description of the zero field (a zero op budget is
    /// the classic silent no-op; the CLI maps this to a typed config
    /// error).
    pub fn validate(&self) -> Result<(), String> {
        if self.total_ops == 0 {
            return Err("fuzz op budget must be positive (--ops 0 would run nothing)".to_owned());
        }
        if self.input_len == 0 {
            return Err("fuzz input length must be positive".to_owned());
        }
        if self.batch_size == 0 {
            return Err("fuzz batch size must be positive".to_owned());
        }
        Ok(())
    }
}

/// The three engine-level lockstep harnesses (SN4L, Dis, proactive)
/// over `layout` — the same trio `run_full_suite` drives, packaged for
/// campaign evaluation and corpus replay.
pub fn engine_harnesses(layout: &CodeLayout) -> Vec<Harness<EngineOp>> {
    let mut harnesses = Vec::new();
    harnesses.push(Harness::new("sn4l", || {
        (
            Box::new(RefSn4l::new(FUZZ_TABLE_ENTRIES)) as _,
            Box::new(ProdSn4l::new(FUZZ_TABLE_ENTRIES)) as _,
        )
    }));
    let dis_layout = layout.clone();
    harnesses.push(Harness::new("dis", move || {
        (
            Box::new(RefDisEngine::new(FUZZ_TABLE_ENTRIES, dis_layout.clone())) as _,
            Box::new(ProdDis::new(FUZZ_TABLE_ENTRIES, &dis_layout)) as _,
        )
    }));
    let pro_layout = layout.clone();
    harnesses.push(Harness::new("proactive", move || {
        (
            Box::new(RefProactive::new(
                fuzz_proactive_config(),
                pro_layout.clone(),
            )) as _,
            Box::new(ProdProactive::new(fuzz_proactive_config(), &pro_layout)) as _,
        )
    }));
    harnesses
}

/// One evaluated candidate: its ops (echoed back for corpus
/// admission), its coverage map, and the shrunk counterexample if any
/// harness diverged.
#[derive(Debug)]
pub struct CandidateOutcome {
    /// The candidate's op sequence.
    pub ops: Vec<EngineOp>,
    /// The candidate's coverage map.
    pub map: CoverageMap,
    /// The first divergence, minimized by the harness.
    pub counterexample: Option<Box<Counterexample>>,
}

/// Evaluates one candidate against the standard engine harnesses: a
/// pure function of `(layout, ops)` — exactly what a worker-pool job
/// runs.
pub fn evaluate(layout: &CodeLayout, ops: Vec<EngineOp>) -> CandidateOutcome {
    evaluate_with(layout, ops, &engine_harnesses(layout))
}

/// [`evaluate`] against caller-supplied harnesses (tests inject buggy
/// models here to prove campaigns find and shrink real divergences).
pub fn evaluate_with(
    layout: &CodeLayout,
    ops: Vec<EngineOp>,
    harnesses: &[Harness<EngineOp>],
) -> CandidateOutcome {
    let map = coverage_of(layout, &ops);
    let mut counterexample = None;
    for h in harnesses {
        if let Err(ce) = h.check(&ops) {
            counterexample = Some(ce);
            break;
        }
    }
    CandidateOutcome {
        ops,
        map,
        counterexample,
    }
}

/// Campaign state: corpus, accumulated coverage, budget accounting.
/// Drive it with [`next_batch`](Campaign::next_batch) →
/// [`evaluate`] (possibly in parallel) →
/// [`absorb`](Campaign::absorb) until [`done`](Campaign::done).
pub struct Campaign {
    cfg: CampaignConfig,
    layout: CodeLayout,
    corpus: Corpus,
    coverage: CoverageMap,
    round: u64,
    ops_planned: u64,
    ops_executed: u64,
    candidates: u64,
    admitted: u64,
    counterexample: Option<Box<Counterexample>>,
    counters: CounterSet,
}

impl Campaign {
    /// Creates a fresh campaign; the layout derives from the seed the
    /// same way `dcfb conformance` derives it.
    ///
    /// # Errors
    ///
    /// The config validation error, verbatim.
    pub fn new(cfg: CampaignConfig) -> Result<Self, String> {
        cfg.validate()?;
        let layout = Fuzzer::new(cfg.seed).layout();
        Ok(Campaign {
            cfg,
            layout,
            corpus: Corpus::new(),
            coverage: CoverageMap::new(),
            round: 0,
            ops_planned: 0,
            ops_executed: 0,
            candidates: 0,
            admitted: 0,
            counterexample: None,
            counters: CounterSet::new(),
        })
    }

    /// Restores a checkpointed campaign: minimized corpus entries (in
    /// admission order), the saved coverage map, and the budget
    /// position. Entries re-merge their coverage; the saved map is
    /// folded on top so bits observed from non-admitted inputs
    /// survive the round trip.
    ///
    /// # Errors
    ///
    /// The config validation error, verbatim.
    pub fn restore(
        cfg: CampaignConfig,
        entries: Vec<Vec<EngineOp>>,
        coverage: CoverageMap,
        round: u64,
        ops_done: u64,
        candidates: u64,
    ) -> Result<Self, String> {
        let mut campaign = Campaign::new(cfg)?;
        let layout = campaign.layout.clone();
        for ops in entries {
            campaign
                .corpus
                .admit_resumed(&layout, &mut campaign.coverage, ops);
        }
        campaign.admitted = campaign.corpus.len() as u64;
        campaign.coverage.merge(&coverage);
        campaign.round = round;
        campaign.ops_planned = ops_done;
        campaign.ops_executed = ops_done;
        campaign.candidates = candidates;
        Ok(campaign)
    }

    /// The campaign's program layout.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// The campaign config.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Whether the budget is exhausted or a divergence ended the hunt.
    pub fn done(&self) -> bool {
        self.counterexample.is_some() || self.ops_planned >= self.cfg.total_ops
    }

    /// Plans the next round's candidates: pure in `(seed, round,
    /// index)` and the round-start corpus, so the batch is identical
    /// at any job count. Empty iff [`done`](Self::done).
    pub fn next_batch(&mut self) -> Vec<Vec<EngineOp>> {
        let mut batch = Vec::new();
        if self.done() {
            return batch;
        }
        for i in 0..self.cfg.batch_size as u64 {
            if self.ops_planned >= self.cfg.total_ops {
                break;
            }
            let child = self.plan_candidate(i);
            self.ops_planned += child.len() as u64;
            batch.push(child);
        }
        self.round += 1;
        batch
    }

    fn plan_candidate(&mut self, index: u64) -> Vec<EngineOp> {
        let cell = derive_seed(self.cfg.seed, self.round, index);
        let mut rng = SmallRng::seed_from_u64(cell);
        let fresh = self.corpus.is_empty() || rng.gen_bool(0.25);
        if fresh {
            let len = self.cfg.input_len / 2
                + rng.gen_range(0..self.cfg.input_len.max(2) as u64) as usize;
            let mut fz = Fuzzer::new(rng.gen());
            fz.engine_ops(&self.layout, len.max(1))
        } else {
            let n = self.corpus.len() as u64;
            let a = rng.gen_range(0..n) as usize;
            let b = rng.gen_range(0..n) as usize;
            let mut mutator = Mutator::new(rng.gen());
            mutator.mutate(
                &self.corpus.entries()[a].ops,
                &self.corpus.entries()[b].ops,
                &self.layout,
            )
        }
    }

    /// Absorbs one round's outcomes, in candidate order: merges
    /// coverage, admits novel inputs (minimized), captures the first
    /// divergence. Ordered absorption is what makes the final state
    /// independent of evaluation parallelism.
    pub fn absorb(&mut self, outcomes: Vec<CandidateOutcome>) {
        for outcome in outcomes {
            self.candidates += 1;
            self.ops_executed += outcome.ops.len() as u64;
            self.counters.add(Ctr::FuzzCandidates, 1);
            if self
                .corpus
                .consider(&self.layout, &mut self.coverage, &outcome.ops, &outcome.map)
            {
                self.admitted += 1;
                self.counters.add(Ctr::FuzzCorpusAdmissions, 1);
            }
            if let Some(ce) = outcome.counterexample {
                self.counters.add(Ctr::FuzzDivergences, 1);
                if self.counterexample.is_none() {
                    self.counterexample = Some(ce);
                }
            }
        }
    }

    /// The accumulated coverage map.
    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }

    /// The corpus (admission order).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The first divergence found, if any.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        self.counterexample.as_deref()
    }

    /// Rounds planned so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Ops executed (absorbed) so far.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Candidates absorbed so far.
    pub fn candidates(&self) -> u64 {
        self.candidates
    }

    /// Corpus admissions so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// The campaign's telemetry counters (candidates, admissions,
    /// divergences).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }
}

/// Runs a whole campaign sequentially (the in-process reference
/// driver; the pooled driver in `dcfb-bench` must land on identical
/// state). Tests and the corpus-bless path use this.
pub fn run_sequential(cfg: CampaignConfig) -> Result<Campaign, String> {
    let mut campaign = Campaign::new(cfg)?;
    while !campaign.done() {
        let batch = campaign.next_batch();
        let layout = campaign.layout().clone();
        let outcomes = batch
            .into_iter()
            .map(|ops| evaluate(&layout, ops))
            .collect();
        campaign.absorb(outcomes);
    }
    Ok(campaign)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::coverage::baseline_coverage;

    #[test]
    fn zero_budget_is_a_config_error() {
        let mut cfg = CampaignConfig::standard(1, 0);
        assert!(Campaign::new(cfg).is_err());
        cfg.total_ops = 10;
        cfg.batch_size = 0;
        assert!(cfg.validate().is_err());
        cfg.batch_size = 8;
        cfg.input_len = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn quick_campaign_is_deterministic_and_beats_the_baseline() {
        let cfg = CampaignConfig::quick(42);
        let a = run_sequential(cfg).unwrap();
        let b = run_sequential(cfg).unwrap();
        assert!(a.counterexample().is_none(), "production diverged");
        assert_eq!(a.coverage().to_hex(), b.coverage().to_hex());
        assert_eq!(a.corpus().digest(), b.corpus().digest());
        assert!(!a.corpus().is_empty(), "no inputs admitted");
        assert!(a.ops_executed() >= cfg.total_ops);

        // The guided campaign must strictly beat the PR-4 fixed-seed
        // generator at the same op budget.
        let baseline = baseline_coverage(42, a.ops_executed());
        assert!(
            a.coverage().bit_count() > baseline.bit_count(),
            "campaign {} bits vs baseline {}",
            a.coverage().bit_count(),
            baseline.bit_count()
        );
        assert!(a.coverage().has_novel_bits_over(&baseline));
    }

    #[test]
    fn restore_round_trips_campaign_state() {
        let cfg = CampaignConfig {
            seed: 7,
            total_ops: 12_000,
            input_len: 96,
            batch_size: 16,
        };
        // Run halfway, snapshot, restore, finish; compare against an
        // uninterrupted run.
        let mut half = Campaign::new(cfg).unwrap();
        for _ in 0..4 {
            let batch = half.next_batch();
            let layout = half.layout().clone();
            let outcomes = batch.into_iter().map(|o| evaluate(&layout, o)).collect();
            half.absorb(outcomes);
        }
        let entries: Vec<Vec<EngineOp>> = half
            .corpus()
            .entries()
            .iter()
            .map(|e| e.ops.clone())
            .collect();
        let mut resumed = Campaign::restore(
            cfg,
            entries,
            *half.coverage(),
            half.rounds(),
            half.ops_executed(),
            half.candidates(),
        )
        .unwrap();
        assert_eq!(resumed.corpus().digest(), half.corpus().digest());
        assert_eq!(resumed.coverage().to_hex(), half.coverage().to_hex());
        while !resumed.done() {
            let batch = resumed.next_batch();
            let layout = resumed.layout().clone();
            let outcomes = batch.into_iter().map(|o| evaluate(&layout, o)).collect();
            resumed.absorb(outcomes);
        }

        let mut full = Campaign::new(cfg).unwrap();
        while !full.done() {
            let batch = full.next_batch();
            let layout = full.layout().clone();
            let outcomes = batch.into_iter().map(|o| evaluate(&layout, o)).collect();
            full.absorb(outcomes);
        }
        assert_eq!(resumed.corpus().digest(), full.corpus().digest());
        assert_eq!(resumed.coverage().to_hex(), full.coverage().to_hex());
        assert_eq!(resumed.candidates(), full.candidates());
    }
}
