//! The mutation engine over [`EngineOp`] sequences.
//!
//! The campaign breeds new inputs from the corpus instead of always
//! generating from scratch: five operators — **splice** (insert a
//! window of one parent into another), **duplicate** (repeat a window
//! in place), **slot-tweak** (perturb one op's fields toward the
//! adversarial families), **layout crossover** (swap the ops touching
//! one layout family between parents), and **havoc** (a stack of random
//! edits plus fresh generator material). Everything runs off the
//! vendored seeded rand, so a [`Mutator`] seeded identically produces
//! identical children — campaigns replay bit-for-bit from `--seed`.

use crate::fuzz::{derive_seed, Fuzzer};
use crate::ops::{CodeLayout, EngineOp, RecentBranch};
use dcfb_frontend::BtbEntry;
use dcfb_trace::Block;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hard cap on child length: mutation can grow inputs (splice,
/// duplicate), but unbounded growth would starve the budget.
pub const MAX_INPUT_LEN: usize = 1024;

/// The five operators, for reporting.
pub const OPERATOR_NAMES: [&str; 5] = [
    "splice",
    "duplicate",
    "slot-tweak",
    "layout-crossover",
    "havoc",
];

/// A seeded mutation engine.
pub struct Mutator {
    rng: SmallRng,
}

impl Mutator {
    /// Creates a mutator; children are a pure function of `seed`, the
    /// parents, and the call sequence.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A block drawn from the adversarial families (mirrors the
    /// generator's families so tweaks stay in interesting territory).
    fn family_block(&mut self) -> Block {
        match self.rng.gen_range(0..7u32) {
            0 => 1000 + self.rng.gen_range(0..36u64), // chain + overrun
            1 => 8 + self.rng.gen_range(0..8u64) * 64, // alias family
            2 => 500 + self.rng.gen_range(0..16u64),  // storm
            3 => 700 + self.rng.gen_range(0..8u64),   // indirects
            4 => 300 + self.rng.gen_range(0..16u64),  // alias targets
            5 => self.rng.gen_range(0..64u64),        // dense low region
            _ => self.rng.gen_range(0..1u64 << 38),   // far
        }
    }

    /// A recent-branch event: usually a real branch from the layout,
    /// sometimes a phantom one.
    fn branch(&mut self, layout: &CodeLayout) -> RecentBranch {
        let branches: Vec<&BtbEntry> = layout.code.values().flatten().collect();
        if !branches.is_empty() && self.rng.gen_bool(0.7) {
            let e = branches[self.rng.gen_range(0..branches.len() as u64) as usize];
            RecentBranch {
                pc: e.pc,
                target: e.target,
            }
        } else {
            let b = self.family_block();
            RecentBranch {
                pc: b * 64 + self.rng.gen_range(0..16u64) * 4,
                target: self.family_block() * 64,
            }
        }
    }

    /// Perturbs one field of `op` (flip a flag, nudge the block toward
    /// a family or an alias neighbor, add/drop/retarget the branch).
    fn tweak_op(&mut self, op: &mut EngineOp, layout: &CodeLayout) {
        match op {
            EngineOp::Demand {
                block,
                hit,
                hit_was_prefetched,
                branch,
            } => match self.rng.gen_range(0..6u32) {
                0 => {
                    *hit = !*hit;
                    *hit_was_prefetched = *hit && *hit_was_prefetched;
                }
                1 => *hit_was_prefetched = *hit && !*hit_was_prefetched,
                2 => *block = block.wrapping_add(1),
                3 => *block = self.family_block(),
                4 => {
                    *branch = if branch.is_some() {
                        None
                    } else {
                        Some(self.branch(layout))
                    }
                }
                _ => {
                    if let Some(b) = branch {
                        b.target = self.family_block() * 64;
                    } else {
                        *branch = Some(self.branch(layout));
                    }
                }
            },
            EngineOp::Fill {
                block,
                was_prefetch,
            } => {
                if self.rng.gen_bool(0.5) {
                    *was_prefetch = !*was_prefetch;
                } else {
                    *block = self.family_block();
                }
            }
            EngineOp::Evict { block, useless } => {
                if self.rng.gen_bool(0.5) {
                    *useless = !*useless;
                } else {
                    *block = self.family_block();
                }
            }
            EngineOp::Tick => {
                // Ticks carry no fields; replace with a demand so the
                // tweak always changes behavior.
                *op = EngineOp::Demand {
                    block: self.family_block(),
                    hit: self.rng.gen_bool(0.5),
                    hit_was_prefetched: false,
                    branch: None,
                };
            }
        }
    }

    /// A random non-empty window of `ops`.
    fn window(&mut self, ops: &[EngineOp]) -> (usize, usize) {
        let len = ops.len().max(1);
        let start = self.rng.gen_range(0..len as u64) as usize;
        let max = (len - start).clamp(1, 64);
        let span = self.rng.gen_range(1..=max as u64) as usize;
        (start, start + span)
    }

    fn splice(&mut self, a: &[EngineOp], b: &[EngineOp]) -> Vec<EngineOp> {
        let mut out = a.to_vec();
        if b.is_empty() {
            return out;
        }
        let (s, e) = self.window(b);
        let at = self.rng.gen_range(0..=out.len() as u64) as usize;
        out.splice(at..at, b[s..e].iter().cloned());
        out
    }

    fn duplicate(&mut self, a: &[EngineOp]) -> Vec<EngineOp> {
        let mut out = a.to_vec();
        if out.is_empty() {
            return out;
        }
        let (s, e) = self.window(a);
        let at = e.min(out.len());
        out.splice(at..at, a[s..e].iter().cloned());
        out
    }

    fn slot_tweak(&mut self, a: &[EngineOp], layout: &CodeLayout) -> Vec<EngineOp> {
        let mut out = a.to_vec();
        if out.is_empty() {
            return out;
        }
        let edits = self.rng.gen_range(1..=4u32);
        for _ in 0..edits {
            let i = self.rng.gen_range(0..out.len() as u64) as usize;
            self.tweak_op(&mut out[i], layout);
        }
        out
    }

    /// Swaps the ops touching one layout family: positions of `a` whose
    /// block falls in the chosen family take the same-position op from
    /// `b` instead. Recombines which families each parent drives.
    fn layout_crossover(&mut self, a: &[EngineOp], b: &[EngineOp]) -> Vec<EngineOp> {
        fn op_block(op: &EngineOp) -> Option<Block> {
            match op {
                EngineOp::Demand { block, .. }
                | EngineOp::Fill { block, .. }
                | EngineOp::Evict { block, .. } => Some(*block),
                EngineOp::Tick => None,
            }
        }
        // Family predicate by representative base block.
        let fam = self.rng.gen_range(0..5u32);
        let in_family = |block: Block| match fam {
            0 => (1000..1036).contains(&block),
            1 => (8..=8 + 7 * 64).contains(&block) && (block - 8).is_multiple_of(64),
            2 => (500..516).contains(&block),
            3 => (700..708).contains(&block),
            _ => block < 64,
        };
        a.iter()
            .enumerate()
            .map(|(i, op)| match (op_block(op), b.get(i)) {
                (Some(block), Some(other)) if in_family(block) => other.clone(),
                _ => op.clone(),
            })
            .collect()
    }

    fn havoc(&mut self, a: &[EngineOp], b: &[EngineOp], layout: &CodeLayout) -> Vec<EngineOp> {
        let mut out = a.to_vec();
        let rounds = self.rng.gen_range(2..=6u32);
        for _ in 0..rounds {
            out = match self.rng.gen_range(0..4u32) {
                0 => self.splice(&out, b),
                1 => self.duplicate(&out),
                2 => self.slot_tweak(&out, layout),
                _ => {
                    // Fresh generator material, seeded off this
                    // mutator's stream so it stays deterministic.
                    let n = self.rng.gen_range(4..=32u64) as usize;
                    let mut fz = Fuzzer::new(derive_seed(self.rng.gen(), 0x4a0c, 0));
                    self.splice(&out, &fz.engine_ops(layout, n))
                }
            };
        }
        out
    }

    /// Breeds one child from parents `a` and `b` with a uniformly
    /// chosen operator; the result is non-empty and capped at
    /// [`MAX_INPUT_LEN`].
    pub fn mutate(&mut self, a: &[EngineOp], b: &[EngineOp], layout: &CodeLayout) -> Vec<EngineOp> {
        let mut out = match self.rng.gen_range(0..5u32) {
            0 => self.splice(a, b),
            1 => self.duplicate(a),
            2 => self.slot_tweak(a, layout),
            3 => self.layout_crossover(a, b),
            _ => self.havoc(a, b, layout),
        };
        out.truncate(MAX_INPUT_LEN);
        if out.is_empty() {
            let mut fz = Fuzzer::new(derive_seed(self.rng.gen(), 0xF2E5, 1));
            out = fz.engine_ops(layout, 16);
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn parents(layout: &CodeLayout) -> (Vec<EngineOp>, Vec<EngineOp>) {
        let mut fz = Fuzzer::new(21);
        (fz.engine_ops(layout, 60), fz.engine_ops(layout, 60))
    }

    #[test]
    fn same_seed_same_children() {
        let layout = Fuzzer::new(21).layout();
        let (a, b) = parents(&layout);
        let run = |seed| {
            let mut m = Mutator::new(seed);
            format!(
                "{:?}",
                (0..20)
                    .map(|_| m.mutate(&a, &b, &layout))
                    .collect::<Vec<_>>()
            )
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn children_are_bounded_and_non_empty() {
        let layout = Fuzzer::new(21).layout();
        let (a, b) = parents(&layout);
        let mut m = Mutator::new(9);
        for _ in 0..200 {
            let child = m.mutate(&a, &b, &layout);
            assert!(!child.is_empty());
            assert!(child.len() <= MAX_INPUT_LEN);
        }
        // Degenerate parents still produce something runnable.
        let child = m.mutate(&[], &[], &layout);
        assert!(!child.is_empty());
    }

    #[test]
    fn children_eventually_differ_from_parents() {
        let layout = Fuzzer::new(21).layout();
        let (a, b) = parents(&layout);
        let mut m = Mutator::new(5);
        let changed = (0..50)
            .map(|_| m.mutate(&a, &b, &layout))
            .filter(|c| format!("{c:?}") != format!("{a:?}"))
            .count();
        assert!(changed > 40, "only {changed}/50 children differed");
    }
}
