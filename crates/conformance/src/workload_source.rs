//! Workload-source registry parity: the 16th conformance check.
//!
//! The `WorkloadSource` registry (`dcfb-workloads/src/source.rs`) is a
//! *resolution* layer — it must never perturb simulation. This check
//! pins that two ways:
//!
//! 1. **Synthetic parity.** Every method in the prefetch registry runs
//!    the golden fixture through [`ResolvedWorkload::from_image`] (the
//!    path `dcfb run`, the supervisor, and the job server all take now)
//!    and each `SimReport::digest()` must be byte-identical to the
//!    checked-in goldens captured via `Simulator::try_new` — same
//!    fixture, different plumbing, zero drift.
//! 2. **Tenant-mix golden.** A fixed two-tenant `mix:` spec runs once
//!    sequentially and is pinned against the blessed `# tenant-mix`
//!    digest in `golden_digests.txt`; the same resolved mix must then
//!    be bit-identical under `--shards 1` and across `--jobs` values
//!    (the interleaver schedule depends only on the quantum and the
//!    trace seed, never on host parallelism).
//!
//! Re-bless after an intentional timing-model change with
//! `DCFB_BLESS=1 cargo test -p dcfb-conformance golden`.

use crate::golden;
use dcfb_sim::{run_resolved, run_sharded_resolved, ShardOptions};
use dcfb_trace::IsaMode;
use dcfb_workloads::{ResolvedWorkload, SourceSpec};

/// The pinned tenant-mix spec: the two smallest catalog workloads, with
/// an explicit quantum small enough to force dozens of context switches
/// inside the golden fixture's 180k-instruction window.
pub const TENANT_MIX_SPEC: &str = "mix:Web Frontend+Web Search,quantum=2500";

/// The method the tenant-mix golden is captured with (the paper's
/// headline composition).
pub const TENANT_MIX_METHOD: &str = "SN4L+Dis+BTB";

/// Runs the pinned tenant-mix spec sequentially and returns the report
/// digest. `bless` uses this to recapture the `# tenant-mix` golden.
pub fn tenant_mix_digest() -> Result<String, String> {
    let spec = SourceSpec::parse(TENANT_MIX_SPEC).map_err(|e| e.to_string())?;
    let mix = spec.resolve(IsaMode::Fixed4).map_err(|e| e.to_string())?;
    let cfg = golden::fixture_config(TENANT_MIX_METHOD)?;
    let report = run_resolved(&mix, cfg, golden::FIXTURE_TRACE_SEED).map_err(|e| e.to_string())?;
    Ok(report.digest())
}

/// The `invariant/workload-source` check: synthetic digests via the
/// registry path, then the blessed tenant-mix digest plus jobs/K=1
/// schedule-independence.
pub fn check_workload_source() -> Result<String, String> {
    // Part 1: every registry method, resolved through the
    // workload-source layer, must reproduce the checked-in golden.
    let resolved = ResolvedWorkload::from_image(golden::fixture_image());
    let goldens = golden::goldens()?;
    let mut mismatched = Vec::new();
    for (method, want) in &goldens {
        let cfg = golden::fixture_config(method)?;
        let report =
            run_resolved(&resolved, cfg, golden::FIXTURE_TRACE_SEED).map_err(|e| e.to_string())?;
        if report.digest() != *want {
            mismatched.push(*method);
        }
    }
    if !mismatched.is_empty() {
        return Err(format!(
            "registry-resolved digest mismatch for: {} (the WorkloadSource path must be \
             byte-identical to the direct Simulator path)",
            mismatched.join(", ")
        ));
    }

    // Part 2: the blessed tenant-mix digest, and bit-identity across
    // shard/job shapes.
    let spec = SourceSpec::parse(TENANT_MIX_SPEC).map_err(|e| e.to_string())?;
    let mix = spec.resolve(IsaMode::Fixed4).map_err(|e| e.to_string())?;
    let cfg = golden::fixture_config(TENANT_MIX_METHOD)?;
    let seq =
        run_resolved(&mix, cfg.clone(), golden::FIXTURE_TRACE_SEED).map_err(|e| e.to_string())?;
    let want = golden::tenant_mix_golden()?;
    if seq.digest() != want {
        return Err(format!(
            "tenant-mix digest drifted from the blessed golden (re-bless with DCFB_BLESS=1 \
             if the change is intentional): got {}",
            seq.digest()
        ));
    }
    let sharded = |shards: usize, jobs: usize| {
        run_sharded_resolved(
            &cfg,
            &mix,
            golden::FIXTURE_TRACE_SEED,
            &ShardOptions {
                shards,
                warmup_overlap: None,
                jobs,
            },
        )
        .map_err(|e| e.to_string())
    };
    let k1 = sharded(1, 1)?;
    if k1.merged.digest() != seq.digest() {
        return Err("tenant-mix K=1 sharded digest diverged from the sequential run".to_owned());
    }
    let k4j1 = sharded(4, 1)?;
    let k4j4 = sharded(4, 4)?;
    if k4j1.merged.digest() != k4j4.merged.digest() {
        return Err(
            "tenant-mix sharded digest varies with --jobs (the interleaver must be \
             schedule-independent)"
                .to_owned(),
        );
    }
    Ok(format!(
        "{} methods registry-identical; tenant-mix golden + jobs/K=1 parity hold",
        goldens.len()
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn workload_source_check_passes() {
        let summary = check_workload_source().unwrap_or_else(|e| panic!("{e}"));
        println!("{summary}");
    }

    #[test]
    fn tenant_mix_digest_is_stable_across_calls() {
        // Resolution builds fresh images each call; the digest must not
        // depend on allocation order or any other run-to-run state.
        let a = tenant_mix_digest().expect("mix digest");
        let b = tenant_mix_digest().expect("mix digest");
        assert_eq!(a, b);
    }
}
