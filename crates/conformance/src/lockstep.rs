//! The lockstep differential driver.
//!
//! A [`Model`] is anything that consumes ops and renders an observable
//! string after each one: the clarity-first reference models in
//! [`crate::reference`] and the production adapters in
//! [`crate::adapters`] both implement it. A [`Harness`] owns a factory
//! producing fresh reference/production pairs, replays an op sequence
//! against both, and reports the first step whose observables differ.
//! On divergence the failing trace is shrunk with
//! [`crate::shrink::shrink`] and packaged as a [`Counterexample`].

use crate::shrink::shrink;
use std::fmt;

/// A state machine under differential test.
pub trait Model {
    /// The operation vocabulary this model consumes.
    type Op;

    /// Applies one op and renders the canonical observable: whatever
    /// the op exposes (query results, prefetches issued, queue
    /// occupancies). Two conforming implementations must render
    /// byte-identical strings for identical op sequences.
    fn apply(&mut self, op: &Self::Op) -> String;

    /// Renders the end-of-run observable (counters, final table
    /// state). Compared once after the whole sequence.
    fn finish(&mut self) -> String {
        String::new()
    }
}

/// The first step at which two models disagreed.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the diverging op; `None` means the end-of-run
    /// [`Model::finish`] observables differed.
    pub step: Option<usize>,
    /// Debug rendering of the diverging op.
    pub op: String,
    /// What the reference model observed.
    pub reference: String,
    /// What the production structure observed.
    pub production: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(i) => writeln!(f, "diverged at op {i}: {}", self.op)?,
            None => writeln!(f, "diverged at end of trace ({})", self.op)?,
        }
        writeln!(f, "  reference:  {}", self.reference)?;
        write!(f, "  production: {}", self.production)
    }
}

/// A minimized divergence report: the shrunk op trace plus the
/// divergence it still reproduces.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Which harness found it.
    pub structure: String,
    /// Length of the original failing trace.
    pub original_len: usize,
    /// The shrunk trace, one op per line (Debug renderings).
    pub ops: Vec<String>,
    /// The divergence reproduced by the shrunk trace.
    pub divergence: Divergence,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] counterexample ({} ops, shrunk from {}):",
            self.structure,
            self.ops.len(),
            self.original_len
        )?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  {i:>4}: {op}")?;
        }
        write!(f, "{}", self.divergence)
    }
}

/// Factory signature: a fresh `(reference, production)` pair.
pub type ModelPair<Op> = (Box<dyn Model<Op = Op>>, Box<dyn Model<Op = Op>>);

/// A named differential harness over one op vocabulary.
pub struct Harness<Op> {
    name: String,
    factory: Box<dyn Fn() -> ModelPair<Op>>,
}

impl<Op: Clone + fmt::Debug> Harness<Op> {
    /// Creates a harness; `factory` must build an independent,
    /// freshly-initialized pair on every call (shrinking replays it
    /// many times).
    pub fn new(name: impl Into<String>, factory: impl Fn() -> ModelPair<Op> + 'static) -> Self {
        Harness {
            name: name.into(),
            factory: Box::new(factory),
        }
    }

    /// The harness name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replays `ops` against a fresh pair; returns the first
    /// divergence, if any.
    pub fn run(&self, ops: &[Op]) -> Option<Divergence> {
        let (mut reference, mut production) = (self.factory)();
        for (i, op) in ops.iter().enumerate() {
            let r = reference.apply(op);
            let p = production.apply(op);
            if r != p {
                return Some(Divergence {
                    step: Some(i),
                    op: format!("{op:?}"),
                    reference: r,
                    production: p,
                });
            }
        }
        let (r, p) = (reference.finish(), production.finish());
        if r != p {
            return Some(Divergence {
                step: None,
                op: "<finish>".to_owned(),
                reference: r,
                production: p,
            });
        }
        None
    }

    /// Replays `ops`; on divergence, shrinks the trace and returns a
    /// [`Counterexample`].
    ///
    /// # Errors
    ///
    /// The minimized counterexample, when the models disagree.
    pub fn check(&self, ops: &[Op]) -> Result<(), Box<Counterexample>> {
        if self.run(ops).is_none() {
            return Ok(());
        }
        let shrunk = shrink(ops, &|sub: &[Op]| self.run(sub).is_some());
        let divergence = match self.run(&shrunk) {
            Some(d) => d,
            // Unreachable for a deterministic harness; keep the
            // original-trace divergence as a safe fallback.
            None => match self.run(ops) {
                Some(d) => d,
                None => return Ok(()),
            },
        };
        Err(Box::new(Counterexample {
            structure: self.name.clone(),
            original_len: ops.len(),
            ops: shrunk.iter().map(|op| format!("{op:?}")).collect(),
            divergence,
        }))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    /// A counter that renders its value; the "buggy" variant saturates
    /// at a ceiling.
    struct Counter {
        value: u64,
        ceiling: Option<u64>,
    }

    impl Model for Counter {
        type Op = u64;
        fn apply(&mut self, op: &u64) -> String {
            self.value += op;
            if let Some(c) = self.ceiling {
                self.value = self.value.min(c);
            }
            self.value.to_string()
        }
        fn finish(&mut self) -> String {
            format!("total={}", self.value)
        }
    }

    fn harness(ceiling: Option<u64>) -> Harness<u64> {
        Harness::new("counter", move || {
            (
                Box::new(Counter {
                    value: 0,
                    ceiling: None,
                }),
                Box::new(Counter { value: 0, ceiling }),
            )
        })
    }

    #[test]
    fn identical_models_agree() {
        let h = harness(None);
        assert!(h.run(&[1, 2, 3, 4]).is_none());
        assert!(h.check(&[5; 100]).is_ok());
    }

    #[test]
    fn divergence_found_and_shrunk() {
        let h = harness(Some(10));
        let ops = vec![1u64; 50];
        let ce = h.check(&ops).expect_err("must diverge past the ceiling");
        // Minimal failing trace: 11 increments of 1.
        assert_eq!(ce.ops.len(), 11);
        assert_eq!(ce.divergence.reference, "11");
        assert_eq!(ce.divergence.production, "10");
        assert_eq!(ce.original_len, 50);
        let text = ce.to_string();
        assert!(text.contains("counter"));
        assert!(text.contains("reference:  11"));
    }

    #[test]
    fn finish_mismatch_reported() {
        struct Silent {
            total: u64,
            drop_last_bit: bool,
        }
        impl Model for Silent {
            type Op = u64;
            fn apply(&mut self, op: &u64) -> String {
                self.total += op;
                String::new()
            }
            fn finish(&mut self) -> String {
                let t = if self.drop_last_bit {
                    self.total & !1
                } else {
                    self.total
                };
                t.to_string()
            }
        }
        let h = Harness::new("silent", || {
            (
                Box::new(Silent {
                    total: 0,
                    drop_last_bit: false,
                }) as Box<dyn Model<Op = u64>>,
                Box::new(Silent {
                    total: 0,
                    drop_last_bit: true,
                }),
            )
        });
        let d = h.run(&[1, 2]).expect("finish differs");
        assert!(d.step.is_none());
        assert_eq!(d.reference, "3");
        assert_eq!(d.production, "2");
    }
}
