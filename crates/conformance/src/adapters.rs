//! Production-side [`Model`] adapters.
//!
//! Each adapter wraps a real structure from `crates/prefetch` /
//! `crates/cache` (driven through `MockContext` for the engine-level
//! ones) and renders the *same* observable strings as the matching
//! reference model in [`crate::reference`]. The rendering code is where
//! both sides must agree; the semantics under test live entirely in the
//! wrapped production types.

use crate::lockstep::Model;
use crate::ops::{branch_set, BtbBufOp, CodeLayout, DisTableOp, EngineOp, PfBufOp, RluOp, SeqOp};
use dcfb_cache::PrefetchBuffer;
use dcfb_prefetch::context::MockContext;
use dcfb_prefetch::{
    BtbPrefetchBuffer, Dis, DisTable, InstrPrefetcher, RecentInstrs, Rlu, SeqTable, Sn4l,
    Sn4lDisBtb, Sn4lDisConfig, TagPolicy,
};
use dcfb_trace::{Block, Instr, InstrKind};

/// Production `SeqTable` under the [`SeqOp`] vocabulary.
pub struct ProdSeqTable(pub SeqTable);

impl Model for ProdSeqTable {
    type Op = SeqOp;

    fn apply(&mut self, op: &SeqOp) -> String {
        match op {
            SeqOp::IsUseful(b) => self.0.is_useful(*b).to_string(),
            SeqOp::Set(b) => {
                self.0.set(*b);
                String::new()
            }
            SeqOp::Reset(b) => {
                self.0.reset(*b);
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        // Entry i is reachable through block i (tagless, direct-mapped).
        let disabled: Vec<usize> = (0..self.0.entries())
            .filter(|&i| !self.0.is_useful(i as Block))
            .collect();
        format!("disabled={disabled:?}")
    }
}

/// Production `DisTable` under the [`DisTableOp`] vocabulary.
pub struct ProdDisTable(pub DisTable);

impl Model for ProdDisTable {
    type Op = DisTableOp;

    fn apply(&mut self, op: &DisTableOp) -> String {
        match op {
            DisTableOp::Record(b, off) => {
                self.0.record(*b, *off);
                String::new()
            }
            DisTableOp::Lookup(b) => format!("{:?}", self.0.lookup(*b)),
        }
    }
}

/// Production `Rlu` under the [`RluOp`] vocabulary.
pub struct ProdRlu(pub Rlu);

impl Model for ProdRlu {
    type Op = RluOp;

    fn apply(&mut self, op: &RluOp) -> String {
        match op {
            RluOp::CheckInsert(b) => {
                if self.0.check_insert(*b) {
                    "hit".to_owned()
                } else {
                    "miss".to_owned()
                }
            }
            RluOp::NoteDemand(b) => {
                self.0.note_demand(*b);
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        let (hits, misses) = self.0.counters();
        format!("hits={hits} misses={misses}")
    }
}

/// Production `BtbPrefetchBuffer` under the [`BtbBufOp`] vocabulary.
pub struct ProdBtbBuffer(pub BtbPrefetchBuffer);

impl Model for ProdBtbBuffer {
    type Op = BtbBufOp;

    fn apply(&mut self, op: &BtbBufOp) -> String {
        match op {
            BtbBufOp::Fill { block, n } => {
                format!(
                    "displaced={:?}",
                    self.0.fill(*block, branch_set(*block, *n))
                )
            }
            BtbBufOp::Take(pc) => match self.0.take_for(*pc) {
                Some(branches) => format!("took={}", branches.len()),
                None => "took=none".to_owned(),
            },
            BtbBufOp::Contains(pc) => self.0.contains_branch(*pc).to_string(),
        }
    }

    fn finish(&mut self) -> String {
        let (fills, lookups, hits) = self.0.counters();
        format!("fills={fills} lookups={lookups} hits={hits}")
    }
}

/// Production `PrefetchBuffer` under the [`PfBufOp`] vocabulary.
pub struct ProdPrefetchBuffer(pub PrefetchBuffer);

impl Model for ProdPrefetchBuffer {
    type Op = PfBufOp;

    fn apply(&mut self, op: &PfBufOp) -> String {
        match op {
            PfBufOp::Insert(b, src) => format!("evicted={:?}", self.0.insert(*b, *src)),
            PfBufOp::Take(b) => format!("{:?}", self.0.take(*b)),
            PfBufOp::Contains(b) => self.0.contains(*b).to_string(),
        }
    }

    fn finish(&mut self) -> String {
        let (lookups, hits, inserted, replaced) = self.0.counters();
        format!(
            "lookups={lookups} hits={hits} inserted={inserted} replaced={replaced} order={:?}",
            self.0.resident_blocks()
        )
    }
}

// ---------------------------------------------------------------------
// Engine-level adapters
// ---------------------------------------------------------------------

/// The `MockContext` drive shared by the engine adapters: applies the
/// [`EngineOp`] resident-set convention and renders the per-op deltas
/// of the context's issue / BTB-fill logs.
struct Drive {
    ctx: MockContext,
    issued_seen: usize,
    fills_seen: usize,
}

impl Drive {
    fn new(layout: &CodeLayout) -> Self {
        let ctx = MockContext {
            code: layout.code.iter().map(|(k, v)| (*k, v.clone())).collect(),
            btb: layout.btb.iter().map(|(k, v)| (*k, *v)).collect(),
            ..MockContext::default()
        };
        Drive {
            ctx,
            issued_seen: 0,
            fills_seen: 0,
        }
    }

    /// Renders the prefetches issued since the last call as
    /// `issued=[block+delay:Source,...]`.
    fn issued_delta(&mut self) -> String {
        let items: Vec<String> = self.ctx.issued[self.issued_seen..]
            .iter()
            .zip(&self.ctx.issued_sources[self.issued_seen..])
            .map(|(&(block, delay), src)| format!("{block}+{delay}:{src:?}"))
            .collect();
        self.issued_seen = self.ctx.issued.len();
        format!("issued=[{}]", items.join(","))
    }

    /// Renders the BTB-buffer fills since the last call as a bare
    /// comma-separated block list.
    fn fills_delta(&mut self) -> String {
        let items: Vec<String> = self.ctx.btb_buffer_fills[self.fills_seen..]
            .iter()
            .map(|(block, _)| block.to_string())
            .collect();
        self.fills_seen = self.ctx.btb_buffer_fills.len();
        items.join(",")
    }
}

/// Applies `op` to a production `InstrPrefetcher` through `ctx`: first
/// the [`EngineOp`] resident-set convention, then the matching
/// `InstrPrefetcher` hook. Public so invariant checks can drive
/// production prefetchers over fuzzed op streams directly.
pub fn apply_engine_op(p: &mut dyn InstrPrefetcher, ctx: &mut MockContext, op: &EngineOp) {
    match op {
        EngineOp::Demand { block, hit, .. } => {
            if *hit {
                ctx.resident.insert(*block);
            } else {
                ctx.resident.remove(block);
            }
        }
        EngineOp::Fill { block, .. } => {
            ctx.resident.insert(*block);
        }
        EngineOp::Evict { block, .. } => {
            ctx.resident.remove(block);
        }
        EngineOp::Tick => {}
    }
    match op {
        EngineOp::Demand {
            block,
            hit,
            hit_was_prefetched,
            branch,
        } => {
            let mut recent = RecentInstrs::default();
            if let Some(b) = branch {
                recent.push(Instr::branch(b.pc, 4, InstrKind::Jump, b.target));
            }
            p.on_demand(ctx, *block, *hit, *hit_was_prefetched, &recent);
        }
        EngineOp::Fill {
            block,
            was_prefetch,
        } => p.on_fill(ctx, *block, *was_prefetch),
        EngineOp::Evict { block, useless } => p.on_evict(ctx, *block, *useless),
        EngineOp::Tick => p.tick(ctx),
    }
}

/// Applies `op` to any production `InstrPrefetcher` through `drive`.
fn step(p: &mut dyn InstrPrefetcher, drive: &mut Drive, op: &EngineOp) {
    apply_engine_op(p, &mut drive.ctx, op);
}

/// Production `Sn4l` under the [`EngineOp`] vocabulary.
pub struct ProdSn4l {
    inner: Sn4l,
    drive: Drive,
}

impl ProdSn4l {
    /// Wraps SN4L over an `entries`-slot SeqTable.
    pub fn new(entries: usize) -> Self {
        ProdSn4l {
            inner: Sn4l::with_table(SeqTable::new(entries)),
            drive: Drive::new(&CodeLayout::default()),
        }
    }
}

impl Model for ProdSn4l {
    type Op = EngineOp;

    fn apply(&mut self, op: &EngineOp) -> String {
        step(&mut self.inner, &mut self.drive, op);
        match op {
            EngineOp::Evict { .. } => String::new(),
            _ => self.drive.issued_delta(),
        }
    }

    fn finish(&mut self) -> String {
        let (issued, suppressed) = self.inner.counters();
        let disabled: Vec<usize> = (0..self.inner.table().entries())
            .filter(|&i| !self.inner.table().is_useful(i as Block))
            .collect();
        format!("issued={issued} suppressed={suppressed} disabled={disabled:?}")
    }
}

/// Production standalone `Dis` under the [`EngineOp`] vocabulary.
pub struct ProdDis {
    inner: Dis,
    drive: Drive,
}

impl ProdDis {
    /// Wraps Dis over an `entries`-slot, 4-bit partially-tagged
    /// DisTable and the agreed program layout.
    pub fn new(entries: usize, layout: &CodeLayout) -> Self {
        ProdDis {
            inner: Dis::with_table(DisTable::new(entries, TagPolicy::Partial(4), 4)),
            drive: Drive::new(layout),
        }
    }
}

impl Model for ProdDis {
    type Op = EngineOp;

    fn apply(&mut self, op: &EngineOp) -> String {
        step(&mut self.inner, &mut self.drive, op);
        match op {
            EngineOp::Evict { .. } => String::new(),
            _ => self.drive.issued_delta(),
        }
    }

    fn finish(&mut self) -> String {
        let (issued, records, decode_mismatches, unresolved_indirects) = self.inner.counters();
        format!(
            "issued={issued} records={records} decode_mismatches={decode_mismatches} \
             unresolved_indirects={unresolved_indirects}"
        )
    }
}

/// Production `Sn4lDisBtb` under the [`EngineOp`] vocabulary.
pub struct ProdProactive {
    inner: Sn4lDisBtb,
    drive: Drive,
}

impl ProdProactive {
    /// Wraps the combined engine with `cfg` and the agreed layout.
    pub fn new(cfg: Sn4lDisConfig, layout: &CodeLayout) -> Self {
        ProdProactive {
            inner: Sn4lDisBtb::new(cfg),
            drive: Drive::new(layout),
        }
    }
}

impl Model for ProdProactive {
    type Op = EngineOp;

    fn apply(&mut self, op: &EngineOp) -> String {
        step(&mut self.inner, &mut self.drive, op);
        match op {
            EngineOp::Evict { .. } => String::new(),
            _ => {
                let issued = self.drive.issued_delta();
                let fills = self.drive.fills_delta();
                let (s, d, r) = self.inner.queue_lens();
                format!("{issued} fills=[{fills}] q=({s},{d},{r})")
            }
        }
    }

    fn finish(&mut self) -> String {
        let stats = self.inner.stats();
        let (rlu_hits, rlu_misses) = self.inner.rlu_counters();
        let (_, records, decode_mismatches, unresolved_indirects) = self.inner.dis_counters();
        format!(
            "seq_issued={} dis_issued={} rlu_filtered={} queue_drops={} depth_terminations={} predecoded={} rlu=(hits={} misses={}) dis=(records={} decode_mismatches={} unresolved_indirects={})",
            stats.seq_issued,
            stats.dis_issued,
            stats.rlu_filtered,
            stats.queue_drops,
            stats.depth_terminations,
            stats.predecoded,
            rlu_hits,
            rlu_misses,
            records,
            decode_mismatches,
            unresolved_indirects,
        )
    }
}
