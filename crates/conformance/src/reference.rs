//! Executable reference models of the paper's structures.
//!
//! Each model is written for *obviousness*, not speed: plain `Vec`s and
//! `VecDeque`s, recency kept by physical order instead of stamps,
//! modulo indexing instead of masks, no shared state, no caching.
//! They re-derive the §V semantics from the paper's text so the
//! production structures in `crates/prefetch` / `crates/cache` can be
//! checked against an independent oracle, step by step, in
//! [`crate::lockstep`].
//!
//! The engine-level models ([`RefSn4l`], [`RefDisEngine`],
//! [`RefProactive`]) also model the *machine* surface the production
//! side sees through `MockContext`: a resident-block set where every
//! issued prefetch lands immediately, and a static [`CodeLayout`] for
//! pre-decoding.

use crate::lockstep::Model;
use crate::ops::{
    branch_set, BtbBufOp, CodeLayout, DisTableOp, EngineOp, PfBufOp, RecentBranch, RluOp, SeqOp,
};
use dcfb_frontend::BtbEntry;
use dcfb_prefetch::Sn4lDisConfig;
use dcfb_telemetry::PfSource;
use dcfb_trace::{block_of, block_offset, Addr, Block};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Table-level models
// ---------------------------------------------------------------------

/// Reference SeqTable: one bit per entry, all starting at 1, indexed by
/// `block mod entries` (§V-A).
#[derive(Clone, Debug)]
pub struct RefSeqTable {
    bits: Vec<bool>,
}

impl RefSeqTable {
    /// Creates a table with `entries` slots, all useful.
    pub fn new(entries: usize) -> Self {
        RefSeqTable {
            bits: vec![true; entries],
        }
    }

    fn slot(&self, block: Block) -> usize {
        (block % self.bits.len() as u64) as usize
    }

    /// Whether `block` is predicted useful.
    pub fn is_useful(&self, block: Block) -> bool {
        self.bits[self.slot(block)]
    }

    /// Marks `block` useful.
    pub fn set(&mut self, block: Block) {
        let i = self.slot(block);
        self.bits[i] = true;
    }

    /// Marks `block` useless.
    pub fn reset(&mut self, block: Block) {
        let i = self.slot(block);
        self.bits[i] = false;
    }

    /// Indices of the disabled entries, for end-of-run comparison.
    pub fn disabled(&self) -> Vec<usize> {
        (0..self.bits.len()).filter(|&i| !self.bits[i]).collect()
    }
}

impl Model for RefSeqTable {
    type Op = SeqOp;

    fn apply(&mut self, op: &SeqOp) -> String {
        match op {
            SeqOp::IsUseful(b) => self.is_useful(*b).to_string(),
            SeqOp::Set(b) => {
                self.set(*b);
                String::new()
            }
            SeqOp::Reset(b) => {
                self.reset(*b);
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        format!("disabled={:?}", self.disabled())
    }
}

/// The [`dcfb_prefetch::TagPolicy`] mirror, spelled out arithmetically.
#[derive(Clone, Copy, Debug)]
pub enum RefTag {
    /// No tag stored; any alias matches.
    Tagless,
    /// The low `n` bits of `block / entries`.
    Partial(u32),
    /// All of `block / entries`.
    Full,
}

impl RefTag {
    fn of(self, block: Block, entries: u64) -> u64 {
        let above = block / entries;
        match self {
            RefTag::Tagless => 0,
            RefTag::Partial(bits) => above % (1u64 << bits),
            RefTag::Full => above,
        }
    }
}

/// Reference DisTable: direct-mapped slots of `(tag, offset)` (§V-B).
#[derive(Clone, Debug)]
pub struct RefDisTable {
    slots: Vec<Option<(u64, u8)>>,
    tag: RefTag,
}

impl RefDisTable {
    /// Creates a table with `entries` slots and tagging policy `tag`.
    pub fn new(entries: usize, tag: RefTag) -> Self {
        RefDisTable {
            slots: vec![None; entries],
            tag,
        }
    }

    fn slot(&self, block: Block) -> usize {
        (block % self.slots.len() as u64) as usize
    }

    /// Overwrites the slot for `block` with the branch `offset`.
    pub fn record(&mut self, block: Block, offset: u8) {
        let i = self.slot(block);
        self.slots[i] = Some((self.tag.of(block, self.slots.len() as u64), offset));
    }

    /// The recorded offset, if the slot is valid and the tag matches.
    pub fn lookup(&self, block: Block) -> Option<u8> {
        let (tag, offset) = self.slots[self.slot(block)]?;
        (tag == self.tag.of(block, self.slots.len() as u64)).then_some(offset)
    }
}

impl Model for RefDisTable {
    type Op = DisTableOp;

    fn apply(&mut self, op: &DisTableOp) -> String {
        match op {
            DisTableOp::Record(b, off) => {
                self.record(*b, *off);
                String::new()
            }
            DisTableOp::Lookup(b) => format!("{:?}", self.lookup(*b)),
        }
    }
}

/// Reference RLU: a FIFO of the last `capacity` looked-up blocks
/// (§V-B).
#[derive(Clone, Debug)]
pub struct RefRlu {
    fifo: VecDeque<Block>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl RefRlu {
    /// Creates an RLU holding `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        RefRlu {
            fifo: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Membership check + FIFO insert; `true` means "recently looked
    /// up, skip the cache".
    pub fn check_insert(&mut self, block: Block) -> bool {
        if self.fifo.contains(&block) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        self.push(block);
        false
    }

    /// Demand-side population: insert without touching the counters.
    pub fn note_demand(&mut self, block: Block) {
        if !self.fifo.contains(&block) {
            self.push(block);
        }
    }

    fn push(&mut self, block: Block) {
        if self.fifo.len() == self.capacity {
            self.fifo.pop_front();
        }
        self.fifo.push_back(block);
    }
}

impl Model for RefRlu {
    type Op = RluOp;

    fn apply(&mut self, op: &RluOp) -> String {
        match op {
            RluOp::CheckInsert(b) => {
                if self.check_insert(*b) {
                    "hit".to_owned()
                } else {
                    "miss".to_owned()
                }
            }
            RluOp::NoteDemand(b) => {
                self.note_demand(*b);
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        format!("hits={} misses={}", self.hits, self.misses)
    }
}

/// Reference BTB prefetch buffer: per-set lists kept in recency order
/// (front = LRU), one entry per block (§V-C).
#[derive(Clone, Debug)]
pub struct RefBtbBuffer {
    sets: Vec<Vec<(Block, Arc<[BtbEntry]>)>>,
    ways: usize,
    fills: u64,
    lookups: u64,
    hits: u64,
}

impl RefBtbBuffer {
    /// Creates a buffer of `entries` block slots, `ways` per set.
    pub fn new(entries: usize, ways: usize) -> Self {
        RefBtbBuffer {
            sets: vec![Vec::new(); entries / ways],
            ways,
            fills: 0,
            lookups: 0,
            hits: 0,
        }
    }

    fn set_of(&self, block: Block) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// Deposits `branches` for `block`; returns the displaced block, if
    /// the set was full of other blocks.
    pub fn fill(&mut self, block: Block, branches: Arc<[BtbEntry]>) -> Option<Block> {
        if branches.is_empty() {
            return None;
        }
        self.fills += 1;
        let ways = self.ways;
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|(b, _)| *b == block) {
            // Update in place; refreshing recency moves it to the back.
            set.remove(pos);
            set.push((block, branches));
            return None;
        }
        let displaced = if set.len() == ways {
            Some(set.remove(0).0)
        } else {
            None
        };
        set.push((block, branches));
        displaced
    }

    /// Destructive lookup: a hit removes the whole block entry.
    pub fn take_for(&mut self, pc: Addr) -> Option<Arc<[BtbEntry]>> {
        self.lookups += 1;
        let block = block_of(pc);
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        let pos = set
            .iter()
            .position(|(b, br)| *b == block && br.iter().any(|e| e.pc == pc))?;
        self.hits += 1;
        Some(set.remove(pos).1)
    }

    /// Non-destructive residency check for the branch at `pc`.
    pub fn contains_branch(&self, pc: Addr) -> bool {
        let block = block_of(pc);
        self.sets[self.set_of(block)]
            .iter()
            .any(|(b, br)| *b == block && br.iter().any(|e| e.pc == pc))
    }
}

impl Model for RefBtbBuffer {
    type Op = BtbBufOp;

    fn apply(&mut self, op: &BtbBufOp) -> String {
        match op {
            BtbBufOp::Fill { block, n } => {
                format!("displaced={:?}", self.fill(*block, branch_set(*block, *n)))
            }
            BtbBufOp::Take(pc) => match self.take_for(*pc) {
                Some(branches) => format!("took={}", branches.len()),
                None => "took=none".to_owned(),
            },
            BtbBufOp::Contains(pc) => self.contains_branch(*pc).to_string(),
        }
    }

    fn finish(&mut self) -> String {
        format!(
            "fills={} lookups={} hits={}",
            self.fills, self.lookups, self.hits
        )
    }
}

/// Reference L1i prefetch buffer: one fully-associative list in recency
/// order (front = LRU).
#[derive(Clone, Debug)]
pub struct RefPrefetchBuffer {
    entries: Vec<(Block, PfSource)>,
    capacity: usize,
    lookups: u64,
    hits: u64,
    inserted: u64,
    replaced: u64,
}

impl RefPrefetchBuffer {
    /// Creates a buffer holding `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        RefPrefetchBuffer {
            entries: Vec::new(),
            capacity,
            lookups: 0,
            hits: 0,
            inserted: 0,
            replaced: 0,
        }
    }

    /// Inserts `block`; a resident block is refreshed, otherwise the
    /// LRU entry is evicted when full. Returns the eviction.
    pub fn insert(&mut self, block: Block, source: PfSource) -> Option<(Block, PfSource)> {
        self.inserted += 1;
        if let Some(pos) = self.entries.iter().position(|(b, _)| *b == block) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.replaced += 1;
            Some(self.entries.remove(0))
        } else {
            None
        };
        self.entries.push((block, source));
        evicted
    }

    /// Demand lookup; a hit removes the block and returns its filler.
    pub fn take(&mut self, block: Block) -> Option<PfSource> {
        self.lookups += 1;
        let pos = self.entries.iter().position(|(b, _)| *b == block)?;
        self.hits += 1;
        Some(self.entries.remove(pos).1)
    }
}

impl Model for RefPrefetchBuffer {
    type Op = PfBufOp;

    fn apply(&mut self, op: &PfBufOp) -> String {
        match op {
            PfBufOp::Insert(b, src) => format!("evicted={:?}", self.insert(*b, *src)),
            PfBufOp::Take(b) => format!("{:?}", self.take(*b)),
            PfBufOp::Contains(b) => self.entries.iter().any(|(e, _)| e == b).to_string(),
        }
    }

    fn finish(&mut self) -> String {
        let order: Vec<Block> = self.entries.iter().map(|(b, _)| *b).collect();
        format!(
            "lookups={} hits={} inserted={} replaced={} order={:?}",
            self.lookups, self.hits, self.inserted, self.replaced, order
        )
    }
}

// ---------------------------------------------------------------------
// Engine-level models
// ---------------------------------------------------------------------

fn render_issued(items: &[String]) -> String {
    format!("issued=[{}]", items.join(","))
}

/// Reference SN4L over [`EngineOp`]s: §V-A followed literally, with the
/// driver's resident-set convention (see [`EngineOp`]).
#[derive(Clone, Debug)]
pub struct RefSn4l {
    table: RefSeqTable,
    resident: BTreeSet<Block>,
    issued: u64,
    suppressed: u64,
}

impl RefSn4l {
    /// Creates the model over a `entries`-slot SeqTable.
    pub fn new(entries: usize) -> Self {
        RefSn4l {
            table: RefSeqTable::new(entries),
            resident: BTreeSet::new(),
            issued: 0,
            suppressed: 0,
        }
    }
}

impl Model for RefSn4l {
    type Op = EngineOp;

    fn apply(&mut self, op: &EngineOp) -> String {
        match op {
            EngineOp::Demand {
                block,
                hit,
                hit_was_prefetched,
                ..
            } => {
                if *hit {
                    self.resident.insert(*block);
                } else {
                    self.resident.remove(block);
                }
                // Metadata: a miss or a still-flagged prefetched hit
                // marks the block useful.
                if !*hit || *hit_was_prefetched {
                    self.table.set(*block);
                }
                // Prefetch the next four blocks whose status bit is 1.
                let mut out = Vec::new();
                for d in 1..=4u64 {
                    let cand = block + d;
                    if !self.table.is_useful(cand) {
                        self.suppressed += 1;
                        continue;
                    }
                    if !self.resident.contains(&cand) {
                        self.resident.insert(cand);
                        self.issued += 1;
                        out.push(format!("{cand}+0:{:?}", PfSource::Sn4l));
                    }
                }
                render_issued(&out)
            }
            EngineOp::Fill { block, .. } => {
                self.resident.insert(*block);
                render_issued(&[])
            }
            EngineOp::Tick => render_issued(&[]),
            EngineOp::Evict { block, useless } => {
                self.resident.remove(block);
                if *useless {
                    self.table.reset(*block);
                }
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        format!(
            "issued={} suppressed={} disabled={:?}",
            self.issued,
            self.suppressed,
            self.table.disabled()
        )
    }
}

/// The Dis recording + replay core, shared by [`RefDisEngine`] and
/// [`RefProactive`]: record the branch offset under the branch's own
/// block, recover the target by pre-decoding at the stored offset, fall
/// back to the BTB for indirect targets (§V-B).
#[derive(Clone, Debug)]
struct RefDisCore {
    table: RefDisTable,
    layout: CodeLayout,
    records: u64,
    decode_mismatches: u64,
    unresolved_indirects: u64,
}

impl RefDisCore {
    fn new(entries: usize, layout: CodeLayout) -> Self {
        RefDisCore {
            table: RefDisTable::new(entries, RefTag::Partial(4)),
            layout,
            records: 0,
            decode_mismatches: 0,
            unresolved_indirects: 0,
        }
    }

    /// Records `branch` under its own block; the stored offset is the
    /// instruction slot (fixed-length ISA).
    fn record(&mut self, branch: RecentBranch) {
        let slot = (block_offset(branch.pc) / 4) as u8;
        self.table.record(block_of(branch.pc), slot);
        self.records += 1;
    }

    /// Recovers the discontinuity target recorded for `block`, if any.
    fn peek_target(&mut self, block: Block) -> Option<Block> {
        let slot = self.table.lookup(block)?;
        let byte_offset = u32::from(slot) * 4;
        let Some(entry) = self.layout.decode_branch_at(block, byte_offset) else {
            // Alias or stale entry: the slot holds no branch — do
            // nothing (§V-B).
            self.decode_mismatches += 1;
            return None;
        };
        let target = if entry.target != 0 {
            entry.target
        } else {
            match self.layout.btb_target(entry.pc) {
                Some(t) => t,
                None => {
                    self.unresolved_indirects += 1;
                    return None;
                }
            }
        };
        Some(block_of(target))
    }

    fn counters(&self) -> String {
        format!(
            "records={} decode_mismatches={} unresolved_indirects={}",
            self.records, self.decode_mismatches, self.unresolved_indirects
        )
    }
}

/// Reference standalone Dis prefetcher over [`EngineOp`]s.
#[derive(Clone, Debug)]
pub struct RefDisEngine {
    core: RefDisCore,
    resident: BTreeSet<Block>,
    issued: u64,
    issue_delay: u64,
}

impl RefDisEngine {
    /// Creates the model over an `entries`-slot DisTable and the agreed
    /// program layout.
    pub fn new(entries: usize, layout: CodeLayout) -> Self {
        RefDisEngine {
            core: RefDisCore::new(entries, layout),
            resident: BTreeSet::new(),
            issued: 0,
            issue_delay: 3,
        }
    }

    /// Replays the table for `block`; returns the rendered issue, if
    /// the recovered target was prefetched.
    fn replay(&mut self, block: Block) -> Vec<String> {
        let Some(target) = self.core.peek_target(block) else {
            return Vec::new();
        };
        if self.resident.contains(&target) {
            return Vec::new();
        }
        self.resident.insert(target);
        self.issued += 1;
        vec![format!("{target}+{}:{:?}", self.issue_delay, PfSource::Dis)]
    }
}

impl Model for RefDisEngine {
    type Op = EngineOp;

    fn apply(&mut self, op: &EngineOp) -> String {
        match op {
            EngineOp::Demand {
                block, hit, branch, ..
            } => {
                if *hit {
                    self.resident.insert(*block);
                } else {
                    self.resident.remove(block);
                }
                if !*hit {
                    if let Some(b) = branch {
                        self.core.record(*b);
                    }
                }
                // Replay on every fetch request, hit or miss (§V-B).
                let out = self.replay(*block);
                render_issued(&out)
            }
            EngineOp::Fill {
                block,
                was_prefetch,
            } => {
                self.resident.insert(*block);
                let out = if *was_prefetch {
                    self.replay(*block)
                } else {
                    Vec::new()
                };
                render_issued(&out)
            }
            EngineOp::Tick => render_issued(&[]),
            EngineOp::Evict { block, .. } => {
                self.resident.remove(block);
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        format!("issued={} {}", self.issued, self.core.counters())
    }
}

/// Which engine produced a chained candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChainSource {
    Seq,
    Dis,
}

/// A point-in-time counter snapshot of a [`RefProactive`], read after
/// every op by the coverage probe in [`crate::coverage`]: the probe
/// diffs consecutive snapshots to turn internal engine activity
/// (issues, filter hits, queue drops, chain cutoffs, pre-decode
/// recoveries) into behavioral coverage events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProactiveStats {
    /// Prefetches issued by the sequential (SN4L/SN1L) side.
    pub seq_issued: u64,
    /// Prefetches issued by the discontinuity side.
    pub dis_issued: u64,
    /// Candidates suppressed by the RLU filter.
    pub rlu_filtered: u64,
    /// RLU filter hits.
    pub rlu_hits: u64,
    /// RLU filter misses.
    pub rlu_misses: u64,
    /// Candidates dropped because a queue was full.
    pub queue_drops: u64,
    /// Chains terminated by the depth-4 cutoff.
    pub depth_terminations: u64,
    /// Blocks sent to the BTB pre-decode path.
    pub predecoded: u64,
    /// Discontinuity branches recorded.
    pub dis_records: u64,
    /// Replays that decoded to nothing (stale / partial-tag alias).
    pub decode_mismatches: u64,
    /// Indirect replays the BTB could not resolve.
    pub unresolved_indirects: u64,
    /// Deepest trigger depth accepted so far.
    pub max_trigger_depth: u8,
    /// Current SeqQueue occupancy.
    pub seq_q: usize,
    /// Current DisQueue occupancy.
    pub dis_q: usize,
    /// Current RLUQueue occupancy.
    pub rlu_q: usize,
}

/// Reference SN4L+Dis+BTB proactive chaining engine (§V-B/§V-C): the
/// SeqQueue / DisQueue / RLUQueue pipeline with SN4L at depth 0, SN1L
/// past discontinuities, the RLU filter, BTB-buffer pre-decoding, and
/// the depth-4 chain cutoff — restated queue by queue.
#[derive(Clone, Debug)]
pub struct RefProactive {
    cfg: Sn4lDisConfig,
    seq: RefSeqTable,
    dis: RefDisCore,
    rlu: RefRlu,
    seq_q: VecDeque<(Block, u8)>,
    dis_q: VecDeque<(Block, u8)>,
    rlu_q: VecDeque<(Block, u8, ChainSource)>,
    resident: BTreeSet<Block>,
    seq_issued: u64,
    dis_issued: u64,
    rlu_filtered: u64,
    queue_drops: u64,
    depth_terminations: u64,
    predecoded: u64,
    /// Deepest trigger depth ever accepted — the chain-depth invariant
    /// witness (must stay ≤ `cfg.max_depth`).
    pub max_trigger_depth: u8,
}

impl RefProactive {
    /// Creates the model from the production configuration struct
    /// (reused as plain data) and the agreed program layout.
    pub fn new(cfg: Sn4lDisConfig, layout: CodeLayout) -> Self {
        RefProactive {
            seq: RefSeqTable::new(cfg.seq_entries),
            dis: RefDisCore::new(cfg.dis_entries, layout),
            rlu: RefRlu::new(cfg.rlu_entries),
            seq_q: VecDeque::new(),
            dis_q: VecDeque::new(),
            rlu_q: VecDeque::new(),
            resident: BTreeSet::new(),
            seq_issued: 0,
            dis_issued: 0,
            rlu_filtered: 0,
            queue_drops: 0,
            depth_terminations: 0,
            predecoded: 0,
            max_trigger_depth: 0,
            cfg,
        }
    }

    /// Chains terminated by the depth limit so far (invariant checks
    /// use this to prove the cutoff actually fired).
    pub fn depth_terminations(&self) -> u64 {
        self.depth_terminations
    }

    /// Snapshot of every internal counter plus the live queue
    /// occupancies, for the behavioral coverage probe.
    pub fn stats(&self) -> ProactiveStats {
        ProactiveStats {
            seq_issued: self.seq_issued,
            dis_issued: self.dis_issued,
            rlu_filtered: self.rlu_filtered,
            rlu_hits: self.rlu.hits,
            rlu_misses: self.rlu.misses,
            queue_drops: self.queue_drops,
            depth_terminations: self.depth_terminations,
            predecoded: self.predecoded,
            dis_records: self.dis.records,
            decode_mismatches: self.dis.decode_mismatches,
            unresolved_indirects: self.dis.unresolved_indirects,
            max_trigger_depth: self.max_trigger_depth,
            seq_q: self.seq_q.len(),
            dis_q: self.dis_q.len(),
            rlu_q: self.rlu_q.len(),
        }
    }

    /// The configured queue capacity (for occupancy bucketing in the
    /// coverage probe).
    pub fn queue_capacity(&self) -> usize {
        self.cfg.queue_capacity
    }

    fn push_candidate(&mut self, block: Block, depth: u8, src: ChainSource) {
        if self.rlu_q.len() == self.cfg.queue_capacity {
            self.queue_drops += 1;
            return;
        }
        self.rlu_q.push_back((block, depth, src));
    }

    fn push_trigger(&mut self, block: Block, depth: u8, also_seq: bool) {
        if depth > self.cfg.max_depth {
            self.depth_terminations += 1;
            return;
        }
        self.max_trigger_depth = self.max_trigger_depth.max(depth);
        if also_seq {
            if self.seq_q.len() == self.cfg.queue_capacity {
                self.queue_drops += 1;
            } else {
                self.seq_q.push_back((block, depth));
            }
        }
        if self.dis_q.len() == self.cfg.queue_capacity {
            self.queue_drops += 1;
        } else {
            self.dis_q.push_back((block, depth));
        }
    }

    fn pump_seq(&mut self) {
        for _ in 0..self.cfg.engine_per_cycle {
            let Some((block, depth)) = self.seq_q.pop_front() else {
                break;
            };
            // SN4L on the demand trigger, SN1L deeper in the chain.
            let span = if depth == 0 {
                4
            } else {
                self.cfg.deep_seq_degree
            };
            for d in 1..=span {
                let cand = block + d;
                if self.seq.is_useful(cand) {
                    self.push_candidate(cand, depth.saturating_add(1), ChainSource::Seq);
                }
            }
        }
    }

    fn pump_dis(&mut self) {
        for _ in 0..self.cfg.engine_per_cycle {
            let Some((block, depth)) = self.dis_q.pop_front() else {
                break;
            };
            if let Some(target) = self.dis.peek_target(block) {
                self.push_candidate(target, depth.saturating_add(1), ChainSource::Dis);
            }
        }
    }

    fn pump_rlu(&mut self, issued: &mut Vec<String>, fills: &mut Vec<Block>) {
        for _ in 0..self.cfg.rlu_per_cycle {
            let Some((block, depth, src)) = self.rlu_q.pop_front() else {
                break;
            };
            if self.rlu.check_insert(block) {
                self.rlu_filtered += 1;
                continue;
            }
            if !self.resident.contains(&block) {
                let delay = match src {
                    ChainSource::Seq => 0,
                    ChainSource::Dis => self.cfg.dis_issue_delay,
                };
                let tag = match (src, depth) {
                    (ChainSource::Seq, 0..=1) => PfSource::Sn4l,
                    (ChainSource::Dis, 0..=1) => PfSource::Dis,
                    _ => PfSource::ProactiveChain,
                };
                self.resident.insert(block);
                match src {
                    ChainSource::Seq => self.seq_issued += 1,
                    ChainSource::Dis => self.dis_issued += 1,
                }
                issued.push(format!("{block}+{delay}:{tag:?}"));
            }
            if self.cfg.btb_prefetch {
                self.predecoded += 1;
                fills.push(block);
            }
            self.push_trigger(block, depth, src == ChainSource::Dis);
        }
    }

    fn render(&self, issued: &[String], fills: &[Block]) -> String {
        let fills: Vec<String> = fills.iter().map(u64::to_string).collect();
        format!(
            "{} fills=[{}] q=({},{},{})",
            render_issued(issued),
            fills.join(","),
            self.seq_q.len(),
            self.dis_q.len(),
            self.rlu_q.len()
        )
    }
}

impl Model for RefProactive {
    type Op = EngineOp;

    fn apply(&mut self, op: &EngineOp) -> String {
        match op {
            EngineOp::Demand {
                block,
                hit,
                hit_was_prefetched,
                branch,
            } => {
                if *hit {
                    self.resident.insert(*block);
                } else {
                    self.resident.remove(block);
                }
                if !*hit || *hit_was_prefetched {
                    self.seq.set(*block);
                }
                if !*hit {
                    if let Some(b) = branch {
                        self.dis.record(*b);
                    }
                }
                self.rlu.note_demand(*block);
                let mut fills = Vec::new();
                if self.cfg.btb_prefetch && !*hit {
                    self.predecoded += 1;
                    fills.push(*block);
                }
                self.push_trigger(*block, 0, true);
                self.render(&[], &fills)
            }
            EngineOp::Fill { block, .. } => {
                self.resident.insert(*block);
                self.render(&[], &[])
            }
            EngineOp::Tick => {
                let mut issued = Vec::new();
                let mut fills = Vec::new();
                self.pump_seq();
                self.pump_dis();
                self.pump_rlu(&mut issued, &mut fills);
                self.render(&issued, &fills)
            }
            EngineOp::Evict { block, useless } => {
                self.resident.remove(block);
                if *useless {
                    self.seq.reset(*block);
                }
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        format!(
            "seq_issued={} dis_issued={} rlu_filtered={} queue_drops={} depth_terminations={} predecoded={} rlu=({}) dis=({})",
            self.seq_issued,
            self.dis_issued,
            self.rlu_filtered,
            self.queue_drops,
            self.depth_terminations,
            self.predecoded,
            format_args!("hits={} misses={}", self.rlu.hits, self.rlu.misses),
            self.dis.counters(),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use dcfb_frontend::BranchClass;

    #[test]
    fn ref_seqtable_aliases_and_initial_state() {
        let mut t = RefSeqTable::new(16);
        assert!(t.is_useful(3));
        t.reset(3);
        assert!(!t.is_useful(3 + 16), "aliased entry shares the bit");
        t.set(3 + 32);
        assert!(t.is_useful(3));
        assert!(t.disabled().is_empty());
    }

    #[test]
    fn ref_distable_partial_tag_wraps() {
        let mut t = RefDisTable::new(16, RefTag::Partial(4));
        t.record(5, 3);
        assert_eq!(t.lookup(5), Some(3));
        assert_eq!(t.lookup(5 + 16), None, "different partial tag");
        assert_eq!(t.lookup(5 + 16 * 16), Some(3), "tag bits wrap");
    }

    #[test]
    fn ref_rlu_is_a_fifo() {
        let mut r = RefRlu::new(2);
        assert!(!r.check_insert(1));
        assert!(!r.check_insert(2));
        assert!(!r.check_insert(3), "3 evicts 1");
        assert!(!r.check_insert(1), "1 was evicted");
        assert!(r.check_insert(3));
    }

    #[test]
    fn ref_btb_buffer_lru_and_whole_entry_take() {
        let mut b = RefBtbBuffer::new(4, 2);
        assert_eq!(b.fill(0, branch_set(0, 1)), None);
        assert_eq!(b.fill(2, branch_set(2, 2)), None);
        // Refresh block 0, making 2 the LRU.
        assert_eq!(b.fill(0, branch_set(0, 1)), None);
        assert_eq!(b.fill(4, branch_set(4, 1)), Some(2));
        // Take removes the whole entry.
        let taken = b.take_for(4 * 64).expect("hit");
        assert_eq!(taken.len(), 1);
        assert!(!b.contains_branch(4 * 64));
    }

    #[test]
    fn ref_pf_buffer_lru() {
        let mut pb = RefPrefetchBuffer::new(2);
        assert!(pb.insert(1, PfSource::NextLine).is_none());
        assert!(pb.insert(2, PfSource::NextLine).is_none());
        assert!(pb.insert(1, PfSource::NextLine).is_none(), "refresh");
        assert_eq!(
            pb.insert(3, PfSource::Sn4l),
            Some((2, PfSource::NextLine)),
            "2 is the LRU after 1's refresh"
        );
        assert_eq!(pb.take(1), Some(PfSource::NextLine));
        assert_eq!(pb.take(1), None);
    }

    #[test]
    fn ref_sn4l_first_touch_prefetches_four() {
        let mut m = RefSn4l::new(64);
        let out = m.apply(&EngineOp::Demand {
            block: 100,
            hit: false,
            hit_was_prefetched: false,
            branch: None,
        });
        assert_eq!(out, "issued=[101+0:Sn4l,102+0:Sn4l,103+0:Sn4l,104+0:Sn4l]");
    }

    #[test]
    fn ref_dis_engine_records_and_replays() {
        let mut layout = CodeLayout::default();
        layout.code.insert(
            10,
            vec![BtbEntry {
                pc: 10 * 64 + 8,
                target: 50 * 64,
                class: BranchClass::Jump,
            }],
        );
        let mut m = RefDisEngine::new(64, layout);
        let miss = m.apply(&EngineOp::Demand {
            block: 50,
            hit: false,
            hit_was_prefetched: false,
            branch: Some(RecentBranch {
                pc: 10 * 64 + 8,
                target: 50 * 64,
            }),
        });
        assert_eq!(miss, "issued=[]", "target already demanded, not issued");
        // Evict 50 so the replay has something to prefetch.
        m.apply(&EngineOp::Evict {
            block: 50,
            useless: false,
        });
        let replay = m.apply(&EngineOp::Demand {
            block: 10,
            hit: true,
            hit_was_prefetched: false,
            branch: None,
        });
        assert_eq!(replay, "issued=[50+3:Dis]");
    }

    #[test]
    fn ref_proactive_depth_limit_holds() {
        // A long jump chain: block b jumps to b+10.
        let mut layout = CodeLayout::default();
        for k in 0..12u64 {
            let b = 100 + k * 10;
            layout.code.insert(
                b,
                vec![BtbEntry {
                    pc: b * 64 + 4,
                    target: (b + 10) * 64,
                    class: BranchClass::Jump,
                }],
            );
        }
        let cfg = Sn4lDisConfig {
            btb_prefetch: false,
            ..Sn4lDisConfig::default()
        };
        let mut m = RefProactive::new(cfg, layout);
        for k in 0..12u64 {
            let b = 100 + k * 10;
            m.apply(&EngineOp::Demand {
                block: b + 10,
                hit: false,
                hit_was_prefetched: false,
                branch: Some(RecentBranch {
                    pc: b * 64 + 4,
                    target: (b + 10) * 64,
                }),
            });
            for _ in 0..4 {
                m.apply(&EngineOp::Tick);
            }
        }
        // Re-demand the chain head (mirrors the production unit test):
        // the replay walks the whole recorded chain in one go.
        m.apply(&EngineOp::Demand {
            block: 100,
            hit: true,
            hit_was_prefetched: false,
            branch: None,
        });
        for _ in 0..64 {
            m.apply(&EngineOp::Tick);
        }
        assert!(m.max_trigger_depth <= 4, "chain exceeded the depth limit");
        assert!(m.depth_terminations > 0, "the cutoff never fired");
    }
}
