//! The operation vocabularies shared by the reference models, the
//! production adapters, and the fuzzer.
//!
//! Every lockstep harness replays a `Vec<Op>` against two
//! [`Model`](crate::lockstep::Model)s and compares the rendered
//! observable after each step, so ops must be plain data: cloneable,
//! debuggable, and free of shared state. Anything both sides need to
//! agree on up front (the program's branch layout, the deterministic
//! branch sets used for BTB-buffer fills) lives here too.

use dcfb_frontend::{BranchClass, BtbEntry};
use dcfb_telemetry::PfSource;
use dcfb_trace::{block_offset, Addr, Block};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Operations on a SeqTable (the SN4L 1-bit usefulness predictor).
#[derive(Clone, Debug)]
pub enum SeqOp {
    /// Query the usefulness bit.
    IsUseful(Block),
    /// Mark the block useful.
    Set(Block),
    /// Mark the block useless.
    Reset(Block),
}

/// Operations on a DisTable (the discontinuity branch-offset table).
#[derive(Clone, Debug)]
pub enum DisTableOp {
    /// Record a discontinuity branch at `offset` within `block`.
    Record(Block, u8),
    /// Look up the recorded offset for `block`.
    Lookup(Block),
}

/// Operations on the RLU lookup filter.
#[derive(Clone, Debug)]
pub enum RluOp {
    /// Filter check + FIFO insert (the prefetcher path).
    CheckInsert(Block),
    /// Demand-side population (no counters).
    NoteDemand(Block),
}

/// Operations on the BTB prefetch buffer.
#[derive(Clone, Debug)]
pub enum BtbBufOp {
    /// Deposit the deterministic branch set [`branch_set`]`(block, n)`.
    Fill {
        /// Block whose branches are deposited.
        block: Block,
        /// Number of branches in the set (0 exercises the empty-fill
        /// path).
        n: u8,
    },
    /// Destructive lookup of the branch at `pc`.
    Take(Addr),
    /// Non-destructive residency check for the branch at `pc`.
    Contains(Addr),
}

/// Operations on the fully-associative L1i prefetch buffer.
#[derive(Clone, Debug)]
pub enum PfBufOp {
    /// Insert a prefetched block attributed to `source`.
    Insert(Block, PfSource),
    /// Demand lookup (removes on hit).
    Take(Block),
    /// Non-destructive residency check.
    Contains(Block),
}

/// The branch the processor most recently retired, as the Dis recording
/// path sees it. The production side wraps this into a `RecentInstrs`;
/// the reference side uses the fields directly.
#[derive(Clone, Copy, Debug)]
pub struct RecentBranch {
    /// Branch pc.
    pub pc: Addr,
    /// Resolved target.
    pub target: Addr,
}

/// Event-level operations driving a whole prefetcher (SN4L, Dis, or the
/// combined proactive engine). One vocabulary serves all three: hooks a
/// prefetcher does not implement observe the empty string on both
/// sides.
///
/// Driver convention for the resident set (mirrored exactly by the
/// reference models and the production `MockContext` adapters):
///
/// * `Demand { hit: true }` inserts the block into the resident set,
///   `hit: false` removes it (the access is what establishes the
///   scenario);
/// * `Fill` inserts the block (it arrived);
/// * `Evict` removes the block, then runs the prefetcher's evict hook;
/// * every issued prefetch makes its block resident immediately (the
///   `MockContext` in-flight-counts-as-resident convention).
#[derive(Clone, Debug)]
pub enum EngineOp {
    /// A demand access.
    Demand {
        /// Accessed block.
        block: Block,
        /// Whether the access hit.
        hit: bool,
        /// Whether the hit line still carried its prefetch flag.
        hit_was_prefetched: bool,
        /// The most recent branch, for the Dis recording path.
        branch: Option<RecentBranch>,
    },
    /// A block arrived in the L1i.
    Fill {
        /// Arriving block.
        block: Block,
        /// Whether it was a prefetch fill.
        was_prefetch: bool,
    },
    /// A block left the L1i.
    Evict {
        /// Evicted block.
        block: Block,
        /// Whether it was a never-demanded prefetch.
        useless: bool,
    },
    /// One engine cycle (pumps the proactive queues).
    Tick,
}

/// The static program both sides of an engine harness agree on: which
/// branches each block contains and what the core BTB knows about
/// indirect targets. Immutable for the duration of a run.
#[derive(Clone, Debug, Default)]
pub struct CodeLayout {
    /// Pre-decode results by block.
    pub code: BTreeMap<Block, Vec<BtbEntry>>,
    /// Core-BTB targets by branch pc (for entries whose encoding has no
    /// target).
    pub btb: BTreeMap<Addr, Addr>,
}

impl CodeLayout {
    /// The branch at `byte_offset` within `block`, if any — the same
    /// match rule as `MockContext::decode_branch_at`.
    pub fn decode_branch_at(&self, block: Block, byte_offset: u32) -> Option<BtbEntry> {
        self.code
            .get(&block)?
            .iter()
            .find(|e| block_offset(e.pc) == byte_offset)
            .copied()
    }

    /// All branches of `block` (empty slice if the block has none).
    pub fn branches_of(&self, block: Block) -> &[BtbEntry] {
        self.code.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The BTB target recorded for the branch at `pc`.
    pub fn btb_target(&self, pc: Addr) -> Option<Addr> {
        self.btb.get(&pc).copied()
    }
}

/// The deterministic branch set used by [`BtbBufOp::Fill`]: `n`
/// conditional branches at the first `n` instruction slots of `block`.
/// Both sides construct it from `(block, n)` alone, so the op stays
/// plain data.
pub fn branch_set(block: Block, n: u8) -> Arc<[BtbEntry]> {
    let entries: Vec<BtbEntry> = (0..u64::from(n))
        .map(|i| BtbEntry {
            pc: block * 64 + i * 4,
            target: (block + 7 + i) * 64,
            class: BranchClass::Conditional,
        })
        .collect();
    Arc::from(entries.as_slice())
}
