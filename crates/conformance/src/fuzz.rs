//! The deterministic trace fuzzer.
//!
//! Seeded from the vendored `rand` (xoshiro256++ behind
//! `SmallRng::seed_from_u64`), so the same seed always produces the
//! same op sequences — replays are bit-identical, and a divergence
//! reported by `dcfb conformance --seed N` reproduces under the same
//! `N` forever.
//!
//! The generators are adversarial on purpose, aimed at the places the
//! paper's structures can go subtly wrong:
//!
//! * **aliasing sets** — blocks congruent modulo the (deliberately
//!   small) table sizes, so direct-mapped slots and partial tags are
//!   hammered with conflicting residents;
//! * **wrap-around offsets** — branches in the last instruction slot of
//!   a block (byte offset 60), the boundary the offset arithmetic has
//!   to get right;
//! * **dense call/return chains** — block *b* calls *b+1* from its
//!   final slot, chaining across the whole family;
//! * **discontinuity storms** — every storm block jumps to another
//!   random storm block, so the DisTable churns and proactive chains
//!   fan out;
//! * **indirect branches** — encodings with no target, only sometimes
//!   resolvable through the BTB.

use crate::ops::{BtbBufOp, CodeLayout, DisTableOp, EngineOp, PfBufOp, RecentBranch, RluOp, SeqOp};
use dcfb_frontend::{BranchClass, BtbEntry};
use dcfb_telemetry::PfSource;
use dcfb_trace::Block;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Table sizes the structure harnesses use: small enough that 10 k
/// fuzzed ops revisit every slot many times over.
pub const FUZZ_TABLE_ENTRIES: usize = 64;

/// Queue capacity for the fuzzed proactive engine (small enough to
/// overflow).
pub const FUZZ_QUEUE_CAPACITY: usize = 8;

/// Capacity of the fuzzed L1i prefetch buffer.
pub const FUZZ_PF_BUFFER_CAPACITY: usize = 16;

/// Geometry of the fuzzed BTB prefetch buffer (the paper's 32×2).
pub const FUZZ_BTB_BUF: (usize, usize) = (32, 2);

/// The proactive-engine configuration the fuzz harnesses run: paper
/// semantics (depth 4, RLU 8, per-cycle budgets) over deliberately
/// tiny tables and queues so aliasing and overflow happen within a
/// 10 k-op run.
pub fn fuzz_proactive_config() -> dcfb_prefetch::Sn4lDisConfig {
    dcfb_prefetch::Sn4lDisConfig {
        seq_entries: FUZZ_TABLE_ENTRIES,
        dis_entries: FUZZ_TABLE_ENTRIES,
        queue_capacity: FUZZ_QUEUE_CAPACITY,
        ..dcfb_prefetch::Sn4lDisConfig::default()
    }
}

/// One splitmix64 step (the standard finalizer; public domain
/// constants), used to derive independent sub-seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed from `(base, a, b)` — the campaign
/// seeds every `(round, candidate)` cell with this, so candidate
/// generation is a pure function of the campaign seed and the cell
/// coordinates, never of the job count or evaluation order.
pub fn derive_seed(base: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(base) ^ a) ^ b)
}

/// The deterministic op-sequence generator.
pub struct Fuzzer {
    rng: SmallRng,
}

impl Fuzzer {
    /// Creates a fuzzer; everything it emits is a pure function of
    /// `seed` and the call sequence.
    pub fn new(seed: u64) -> Self {
        Fuzzer {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A block biased toward collisions in a `entries`-slot
    /// direct-mapped table: dense low blocks, aliases of a fixed base,
    /// and occasional far-away giants (tag-width stress).
    fn table_block(&mut self, entries: u64) -> Block {
        match self.rng.gen_range(0..4u32) {
            // Dense region: every slot of a small window.
            0 => self.rng.gen_range(0..entries / 2),
            // Aliasing set: same slot, climbing tags.
            1 => {
                let base = self.rng.gen_range(0..8u64);
                base + self.rng.gen_range(0..32u64) * entries
            }
            // Tag wrap: aliases whose partial tag also collides
            // (tag bits wrap every 16 × entries for a 4-bit tag).
            2 => {
                let base = self.rng.gen_range(0..8u64);
                base + self.rng.gen_range(0..4u64) * entries * 16
            }
            // Far block: large addresses, still safely below overflow.
            _ => self.rng.gen_range(0..1u64 << 38),
        }
    }

    /// Ops for the SeqTable harness.
    pub fn seq_ops(&mut self, n: usize) -> Vec<SeqOp> {
        let entries = FUZZ_TABLE_ENTRIES as u64;
        (0..n)
            .map(|_| {
                let b = self.table_block(entries);
                match self.rng.gen_range(0..4u32) {
                    0 | 1 => SeqOp::IsUseful(b),
                    2 => SeqOp::Set(b),
                    _ => SeqOp::Reset(b),
                }
            })
            .collect()
    }

    /// Ops for the DisTable harness.
    pub fn dis_table_ops(&mut self, n: usize) -> Vec<DisTableOp> {
        let entries = FUZZ_TABLE_ENTRIES as u64;
        (0..n)
            .map(|_| {
                let b = self.table_block(entries);
                if self.rng.gen_bool(0.5) {
                    DisTableOp::Record(b, self.rng.gen_range(0..16u32) as u8)
                } else {
                    DisTableOp::Lookup(b)
                }
            })
            .collect()
    }

    /// Ops for the RLU harness: a pool barely larger than the filter,
    /// so hits, misses, and FIFO evictions all happen constantly.
    pub fn rlu_ops(&mut self, n: usize) -> Vec<RluOp> {
        (0..n)
            .map(|_| {
                let b = self.rng.gen_range(0..12u64);
                if self.rng.gen_bool(0.6) {
                    RluOp::CheckInsert(b)
                } else {
                    RluOp::NoteDemand(b)
                }
            })
            .collect()
    }

    /// Ops for the BTB-prefetch-buffer harness: blocks spanning four
    /// aliases per set, fills of 0–4 branches (0 = the ignored empty
    /// fill), and takes/probes at slot boundaries including misses.
    pub fn btb_buf_ops(&mut self, n: usize) -> Vec<BtbBufOp> {
        let sets = (FUZZ_BTB_BUF.0 / FUZZ_BTB_BUF.1) as u64;
        (0..n)
            .map(|_| {
                let block = self.rng.gen_range(0..4 * sets);
                match self.rng.gen_range(0..3u32) {
                    0 => BtbBufOp::Fill {
                        block,
                        n: self.rng.gen_range(0..5u32) as u8,
                    },
                    1 => BtbBufOp::Take(block * 64 + self.rng.gen_range(0..6u64) * 4),
                    _ => BtbBufOp::Contains(block * 64 + self.rng.gen_range(0..6u64) * 4),
                }
            })
            .collect()
    }

    /// Ops for the L1i prefetch-buffer harness.
    pub fn pf_buf_ops(&mut self, n: usize) -> Vec<PfBufOp> {
        const SOURCES: [PfSource; 4] = [
            PfSource::NextLine,
            PfSource::Sn4l,
            PfSource::Dis,
            PfSource::ProactiveChain,
        ];
        (0..n)
            .map(|_| {
                let b = self
                    .rng
                    .gen_range(0..(FUZZ_PF_BUFFER_CAPACITY as u64 * 5 / 2));
                match self.rng.gen_range(0..4u32) {
                    0 | 1 => PfBufOp::Insert(b, SOURCES[self.rng.gen_range(0..4u32) as usize]),
                    2 => PfBufOp::Take(b),
                    _ => PfBufOp::Contains(b),
                }
            })
            .collect()
    }

    /// Builds the adversarial program layout the engine harnesses run
    /// over (see the module docs for the families).
    pub fn layout(&mut self) -> CodeLayout {
        let mut layout = CodeLayout::default();
        let entries = FUZZ_TABLE_ENTRIES as u64;

        // Dense call/return chain, branching from the final slot
        // (byte offset 60 — the wrap-around boundary). Block range kept
        // clear of the alias family (8 + k*64) and the storm.
        for b in 1000..1032u64 {
            layout.code.insert(
                b,
                vec![BtbEntry {
                    pc: b * 64 + 60,
                    target: (b + 1) * 64,
                    class: if b % 2 == 0 {
                        BranchClass::Call
                    } else {
                        BranchClass::Return
                    },
                }],
            );
        }

        // DisTable aliasing family: same slot modulo `entries`, branch
        // slots differing per alias so stale entries decode to nothing.
        for k in 0..8u64 {
            let b = 8 + k * entries;
            layout.code.insert(
                b,
                vec![BtbEntry {
                    pc: b * 64 + (k % 16) * 4,
                    target: (300 + k) * 64,
                    class: BranchClass::Jump,
                }],
            );
        }

        // Discontinuity storm: every storm block jumps somewhere else
        // in the storm.
        for b in 500..516u64 {
            let target = 500 + self.rng.gen_range(0..16u64);
            layout.code.insert(
                b,
                vec![BtbEntry {
                    pc: b * 64 + self.rng.gen_range(0..16u64) * 4,
                    target: target * 64,
                    class: BranchClass::Jump,
                }],
            );
        }

        // Indirect branches: no target in the encoding; only the even
        // ones are resolvable through the BTB.
        for i in 0..8u64 {
            let b = 700 + i;
            let pc = b * 64 + 28;
            layout.code.insert(
                b,
                vec![BtbEntry {
                    pc,
                    target: 0,
                    class: BranchClass::IndirectCall,
                }],
            );
            if i % 2 == 0 {
                layout.btb.insert(pc, (600 + i) * 64);
            }
        }

        layout
    }

    /// A block an engine harness might demand: drawn from the layout
    /// families, their targets, or the dense low region.
    fn engine_block(&mut self, layout: &CodeLayout) -> Block {
        match self.rng.gen_range(0..5u32) {
            0 => {
                // A block that has code (replay + pre-decode paths).
                let keys: Vec<Block> = layout.code.keys().copied().collect();
                keys[self.rng.gen_range(0..keys.len() as u64) as usize]
            }
            1 => 300 + self.rng.gen_range(0..16u64), // alias-family targets
            2 => 500 + self.rng.gen_range(0..20u64), // storm + neighbors
            3 => 1000 + self.rng.gen_range(0..36u64), // chain + overrun
            _ => self.rng.gen_range(0..64u64),       // dense low region
        }
    }

    /// A recent-branch event: usually a real branch from the layout,
    /// sometimes a bogus one (records that later decode to nothing).
    fn recent_branch(&mut self, layout: &CodeLayout) -> RecentBranch {
        if self.rng.gen_bool(0.8) {
            let branches: Vec<&BtbEntry> = layout.code.values().flatten().collect();
            let e = branches[self.rng.gen_range(0..branches.len() as u64) as usize];
            RecentBranch {
                pc: e.pc,
                target: e.target,
            }
        } else {
            let b = self.engine_block(layout);
            RecentBranch {
                pc: b * 64 + self.rng.gen_range(0..16u64) * 4,
                target: self.engine_block(layout) * 64,
            }
        }
    }

    /// Event-level ops for the SN4L / Dis / proactive harnesses.
    pub fn engine_ops(&mut self, layout: &CodeLayout, n: usize) -> Vec<EngineOp> {
        (0..n)
            .map(|_| match self.rng.gen_range(0..20u32) {
                0..=8 => {
                    let hit = self.rng.gen_bool(0.5);
                    EngineOp::Demand {
                        block: self.engine_block(layout),
                        hit,
                        hit_was_prefetched: hit && self.rng.gen_bool(0.3),
                        branch: if self.rng.gen_bool(0.7) {
                            Some(self.recent_branch(layout))
                        } else {
                            None
                        },
                    }
                }
                9..=15 => EngineOp::Tick,
                16 | 17 => EngineOp::Fill {
                    block: self.engine_block(layout),
                    was_prefetch: self.rng.gen_bool(0.5),
                },
                _ => EngineOp::Evict {
                    block: self.engine_block(layout),
                    useless: self.rng.gen_bool(0.5),
                },
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_ops() {
        let mk = |seed| {
            let mut f = Fuzzer::new(seed);
            let layout = f.layout();
            format!("{:?} {:?}", f.engine_ops(&layout, 200), f.seq_ops(50))
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn layout_has_all_families() {
        let layout = Fuzzer::new(1).layout();
        assert!(layout.code.contains_key(&1000), "call/return chain");
        assert!(layout.code.contains_key(&8), "alias family base");
        assert!(
            layout.code.contains_key(&(8 + 7 * 64)),
            "alias family depth"
        );
        assert!(layout.code.contains_key(&500), "storm");
        assert!(layout.code.contains_key(&700), "indirects");
        assert!(layout.btb.contains_key(&(700 * 64 + 28)), "resolvable");
        assert!(!layout.btb.contains_key(&(701 * 64 + 28)), "unresolvable");
        // Wrap-around slot: chain branches sit in the final slot.
        assert_eq!(layout.code[&1000][0].pc % 64, 60);
    }

    #[test]
    fn engine_ops_mix_all_kinds() {
        let mut f = Fuzzer::new(3);
        let layout = f.layout();
        let ops = f.engine_ops(&layout, 2_000);
        let demands = ops
            .iter()
            .filter(|o| matches!(o, EngineOp::Demand { .. }))
            .count();
        let ticks = ops.iter().filter(|o| matches!(o, EngineOp::Tick)).count();
        let evicts = ops
            .iter()
            .filter(|o| matches!(o, EngineOp::Evict { .. }))
            .count();
        let fills = ops
            .iter()
            .filter(|o| matches!(o, EngineOp::Fill { .. }))
            .count();
        assert!(demands > 500 && ticks > 400 && evicts > 50 && fills > 50);
    }
}
