//! Greedy delta-debugging (ddmin-style) trace minimization.
//!
//! Given a failing op sequence and a deterministic predicate, remove
//! ever-smaller chunks while the failure persists. Every candidate is
//! replayed from scratch, so the predicate must be a pure function of
//! the op sequence — which is exactly what the lockstep harnesses
//! guarantee (fresh model pair per run, no ambient state).

/// Shrinks `ops` to a (locally) minimal sequence still satisfying
/// `fails`. Assumes `fails(ops)` is `true` on entry; if it is not, the
/// input is returned unchanged.
///
/// The result is 1-minimal: removing any single remaining op makes the
/// failure disappear.
pub fn shrink<Op: Clone>(ops: &[Op], fails: &dyn Fn(&[Op]) -> bool) -> Vec<Op> {
    if !fails(ops) {
        return ops.to_vec();
    }
    let mut cur: Vec<Op> = ops.to_vec();
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if fails(&candidate) {
                cur = candidate;
                removed_any = true;
                // The window now holds new content; retry in place.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                return cur;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_single_culprit() {
        let ops: Vec<u32> = (0..100).collect();
        let fails = |s: &[u32]| s.contains(&37);
        let min = shrink(&ops, &fails);
        assert_eq!(min, vec![37]);
    }

    #[test]
    fn keeps_interacting_pair() {
        let ops: Vec<u32> = (0..64).collect();
        let fails = |s: &[u32]| s.contains(&3) && s.contains(&60);
        let min = shrink(&ops, &fails);
        assert_eq!(min, vec![3, 60]);
    }

    #[test]
    fn order_sensitive_failure_preserved() {
        let ops = vec![5, 1, 9, 2, 7];
        // Fails only if 9 appears before 7.
        let fails = |s: &[u32]| {
            let i9 = s.iter().position(|&x| x == 9);
            let i7 = s.iter().position(|&x| x == 7);
            matches!((i9, i7), (Some(a), Some(b)) if a < b)
        };
        let min = shrink(&ops, &fails);
        assert_eq!(min, vec![9, 7]);
    }

    #[test]
    fn non_failing_input_returned_unchanged() {
        let ops = vec![1, 2, 3];
        let fails = |_: &[u32]| false;
        assert_eq!(shrink(&ops, &fails), ops);
    }

    #[test]
    fn result_is_one_minimal() {
        let ops: Vec<u32> = (0..40).collect();
        let fails = |s: &[u32]| s.iter().filter(|&&x| x % 3 == 0).count() >= 4;
        let min = shrink(&ops, &fails);
        assert!(fails(&min));
        for i in 0..min.len() {
            let mut reduced = min.clone();
            reduced.remove(i);
            assert!(!fails(&reduced), "removing index {i} should fix it");
        }
    }
}
