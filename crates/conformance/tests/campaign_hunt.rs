//! A coverage-guided campaign must *find* an injected reference-model
//! bug, not just re-check a fixed trace: evaluation here runs against a
//! harness whose reference SN4L carries the classic §V-A off-by-one
//! (`1..4` instead of `1..=4`), and a bounded campaign has to surface
//! the divergence and hand back a counterexample shrunk to (essentially)
//! a single demand.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_conformance::adapters::ProdSn4l;
use dcfb_conformance::campaign::{evaluate_with, Campaign, CampaignConfig};
use dcfb_conformance::fuzz::FUZZ_TABLE_ENTRIES;
use dcfb_conformance::ops::EngineOp;
use dcfb_conformance::reference::RefSeqTable;
use dcfb_conformance::{Harness, Model};
use dcfb_telemetry::PfSource;
use std::collections::BTreeSet;

/// A scratch SN4L with the intentional off-by-one: the next-4 window
/// is coded as `1..4`, so the fourth successor is never prefetched.
struct BuggySn4l {
    table: RefSeqTable,
    resident: BTreeSet<u64>,
    issued: u64,
    suppressed: u64,
}

impl BuggySn4l {
    fn new(entries: usize) -> Self {
        BuggySn4l {
            table: RefSeqTable::new(entries),
            resident: BTreeSet::new(),
            issued: 0,
            suppressed: 0,
        }
    }
}

impl Model for BuggySn4l {
    type Op = EngineOp;

    fn apply(&mut self, op: &EngineOp) -> String {
        match op {
            EngineOp::Demand {
                block,
                hit,
                hit_was_prefetched,
                ..
            } => {
                if *hit {
                    self.resident.insert(*block);
                } else {
                    self.resident.remove(block);
                }
                if !*hit || *hit_was_prefetched {
                    self.table.set(*block);
                }
                let mut out = Vec::new();
                for d in 1..4u64 {
                    // BUG: should be 1..=4 — SN4L, not SN3L.
                    let cand = block + d;
                    if !self.table.is_useful(cand) {
                        self.suppressed += 1;
                        continue;
                    }
                    if !self.resident.contains(&cand) {
                        self.resident.insert(cand);
                        self.issued += 1;
                        out.push(format!("{cand}+0:{:?}", PfSource::Sn4l));
                    }
                }
                format!("issued=[{}]", out.join(","))
            }
            EngineOp::Fill { block, .. } => {
                self.resident.insert(*block);
                "issued=[]".to_owned()
            }
            EngineOp::Tick => "issued=[]".to_owned(),
            EngineOp::Evict { block, useless } => {
                self.resident.remove(block);
                if *useless {
                    self.table.reset(*block);
                }
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        format!(
            "issued={} suppressed={} disabled={:?}",
            self.issued,
            self.suppressed,
            self.table.disabled()
        )
    }
}

#[test]
fn bounded_campaign_finds_and_shrinks_the_injected_off_by_one() {
    let cfg = CampaignConfig {
        seed: 42,
        total_ops: 200_000,
        input_len: 128,
        batch_size: 32,
    };
    let mut campaign = Campaign::new(cfg).unwrap();
    let harnesses = vec![Harness::new("sn4l-injected-bug", || {
        (
            Box::new(BuggySn4l::new(FUZZ_TABLE_ENTRIES)) as _,
            Box::new(ProdSn4l::new(FUZZ_TABLE_ENTRIES)) as _,
        )
    })];
    while !campaign.done() {
        let batch = campaign.next_batch();
        let layout = campaign.layout().clone();
        let outcomes = batch
            .into_iter()
            .map(|ops| evaluate_with(&layout, ops, &harnesses))
            .collect();
        campaign.absorb(outcomes);
    }

    let ce = campaign
        .counterexample()
        .expect("the campaign must find the off-by-one well inside the budget");
    assert!(
        ce.ops.len() <= 3,
        "expected a <=3-op shrunk counterexample, got {} ops:\n{ce}",
        ce.ops.len()
    );
    assert!(
        ce.ops.iter().any(|o| o.starts_with("Demand")),
        "the minimal reproducer must contain a demand:\n{ce}"
    );
    let d = &ce.divergence;
    assert_ne!(d.reference, d.production);
    // Production (correct) issues one more prefetch than the buggy copy.
    let issues = |s: &str| s.matches("Sn4l").count();
    assert_eq!(issues(&d.production), issues(&d.reference) + 1, "{ce}");
}
