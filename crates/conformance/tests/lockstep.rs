//! Full-scale conformance runs: every lockstep harness over 10 k+
//! fuzzed ops, the invariant suite, and the injected-bug demonstration
//! (an off-by-one in a scratch copy of SN4L must be caught and shrunk
//! to a minimal counterexample).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_conformance::adapters::ProdSn4l;
use dcfb_conformance::fuzz::FUZZ_TABLE_ENTRIES;
use dcfb_conformance::ops::EngineOp;
use dcfb_conformance::reference::RefSeqTable;
use dcfb_conformance::{run_full_suite, Fuzzer, Harness, Model};
use dcfb_telemetry::PfSource;
use std::collections::BTreeSet;

const SEED: u64 = 0xDCFB;
const OPS: usize = 10_000;

#[test]
fn full_suite_runs_clean_at_10k_ops() {
    let report = run_full_suite(SEED, OPS);
    assert!(
        report.passed(),
        "conformance suite failed:\n{}",
        report.render()
    );
    assert_eq!(report.ops_per_structure, OPS);
    // 8 lockstep harnesses + 4 invariants + digest parity + shard
    // parity + corpus replay + workload-source registry parity.
    assert_eq!(report.checks.len(), 16);
}

#[test]
fn different_seed_also_clean() {
    // A second seed, smaller budget: guards against one lucky seed.
    let report = run_full_suite(20_260_807, 3_000);
    assert!(
        report.passed(),
        "conformance suite failed:\n{}",
        report.render()
    );
}

/// A scratch copy of the reference SN4L with an intentionally injected
/// off-by-one: the §V-A next-4 window is coded as `1..4`, so the
/// fourth successor is never prefetched. The lockstep harness must
/// catch this against the production SN4L and shrink the failing trace
/// to (essentially) a single demand.
struct BuggySn4l {
    table: RefSeqTable,
    resident: BTreeSet<u64>,
    issued: u64,
    suppressed: u64,
}

impl BuggySn4l {
    fn new(entries: usize) -> Self {
        BuggySn4l {
            table: RefSeqTable::new(entries),
            resident: BTreeSet::new(),
            issued: 0,
            suppressed: 0,
        }
    }
}

impl Model for BuggySn4l {
    type Op = EngineOp;

    fn apply(&mut self, op: &EngineOp) -> String {
        match op {
            EngineOp::Demand {
                block,
                hit,
                hit_was_prefetched,
                ..
            } => {
                if *hit {
                    self.resident.insert(*block);
                } else {
                    self.resident.remove(block);
                }
                if !*hit || *hit_was_prefetched {
                    self.table.set(*block);
                }
                let mut out = Vec::new();
                for d in 1..4u64 {
                    // BUG: should be 1..=4 — SN4L, not SN3L.
                    let cand = block + d;
                    if !self.table.is_useful(cand) {
                        self.suppressed += 1;
                        continue;
                    }
                    if !self.resident.contains(&cand) {
                        self.resident.insert(cand);
                        self.issued += 1;
                        out.push(format!("{cand}+0:{:?}", PfSource::Sn4l));
                    }
                }
                format!("issued=[{}]", out.join(","))
            }
            EngineOp::Fill { block, .. } => {
                self.resident.insert(*block);
                "issued=[]".to_owned()
            }
            EngineOp::Tick => "issued=[]".to_owned(),
            EngineOp::Evict { block, useless } => {
                self.resident.remove(block);
                if *useless {
                    self.table.reset(*block);
                }
                String::new()
            }
        }
    }

    fn finish(&mut self) -> String {
        format!(
            "issued={} suppressed={} disabled={:?}",
            self.issued,
            self.suppressed,
            self.table.disabled()
        )
    }
}

#[test]
fn injected_off_by_one_is_caught_and_shrunk() {
    let harness = Harness::new("sn4l-injected-bug", || {
        (
            Box::new(BuggySn4l::new(FUZZ_TABLE_ENTRIES)) as _,
            Box::new(ProdSn4l::new(FUZZ_TABLE_ENTRIES)) as _,
        )
    });
    let mut fz = Fuzzer::new(SEED);
    let layout = fz.layout();
    let ops = fz.engine_ops(&layout, OPS);

    let ce = harness
        .check(&ops)
        .expect_err("the off-by-one must diverge from production SN4L");

    // The minimal reproducer is a single demand: production issues
    // block+4, the buggy copy stops at block+3.
    assert_eq!(
        ce.ops.len(),
        1,
        "expected a 1-op shrunk counterexample:\n{ce}"
    );
    assert!(
        ce.ops[0].starts_with("Demand"),
        "minimal op must be a demand:\n{ce}"
    );
    assert_eq!(ce.original_len, OPS);
    let d = &ce.divergence;
    assert_eq!(d.step, Some(0), "diverges on the first surviving op");
    assert_ne!(d.reference, d.production);
    // Production (the correct side here) issues one more prefetch than
    // the buggy reference copy.
    let issues = |s: &str| s.matches("Sn4l").count();
    assert_eq!(
        issues(&d.production),
        issues(&d.reference) + 1,
        "production must issue exactly one more block:\n{ce}"
    );
}

#[test]
fn counterexample_renders_readably() {
    let harness = Harness::new("sn4l-injected-bug", || {
        (
            Box::new(BuggySn4l::new(FUZZ_TABLE_ENTRIES)) as _,
            Box::new(ProdSn4l::new(FUZZ_TABLE_ENTRIES)) as _,
        )
    });
    let mut fz = Fuzzer::new(7);
    let layout = fz.layout();
    let ops = fz.engine_ops(&layout, 2_000);
    let ce = harness.check(&ops).expect_err("must diverge");
    let text = ce.to_string();
    assert!(text.contains("sn4l-injected-bug"));
    assert!(text.contains("shrunk from 2000"));
    assert!(text.contains("reference:"));
    assert!(text.contains("production:"));
}
