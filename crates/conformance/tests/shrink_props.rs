//! Property tests for the ddmin shrinker over seeded synthetic
//! predicates: the shrunk sequence still fails, is 1-minimal (dropping
//! any single element un-fails it), and re-shrinking is a fixpoint.
//! The predicate families exercise the shapes lockstep failures take:
//! single culprits, required subsets, ordered pairs, and
//! threshold-count failures.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use dcfb_conformance::shrink;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic synthetic predicate over `u32` sequences.
enum Predicate {
    /// Fails iff every listed element is present.
    RequiredSet(Vec<u32>),
    /// Fails iff `a` appears somewhere before `b`.
    OrderedPair(u32, u32),
    /// Fails iff at least `n` elements satisfy `x % m == r`.
    Threshold { m: u32, r: u32, n: usize },
}

impl Predicate {
    fn fails(&self, s: &[u32]) -> bool {
        match self {
            Predicate::RequiredSet(need) => need.iter().all(|x| s.contains(x)),
            Predicate::OrderedPair(a, b) => {
                match (s.iter().position(|x| x == a), s.iter().position(|x| x == b)) {
                    (Some(i), Some(j)) => i < j,
                    _ => false,
                }
            }
            Predicate::Threshold { m, r, n } => s.iter().filter(|x| *x % m == *r).count() >= *n,
        }
    }
}

/// Generates `(input, predicate)` pairs where the predicate fails on
/// the input by construction.
fn failing_case(rng: &mut SmallRng) -> (Vec<u32>, Predicate) {
    let len = rng.gen_range(5..120) as usize;
    let mut input: Vec<u32> = (0..len).map(|_| rng.gen_range(0..200) as u32).collect();
    match rng.gen_range(0..3) {
        0 => {
            // Plant 1–4 required values at random positions (distinct
            // from the background range so duplicates can't mask them).
            let k = rng.gen_range(1..5) as usize;
            let need: Vec<u32> = (0..k).map(|i| 1_000 + i as u32).collect();
            for x in &need {
                let at = rng.gen_range(0..input.len() as u64) as usize;
                input.insert(at, *x);
            }
            (input, Predicate::RequiredSet(need))
        }
        1 => {
            let (a, b) = (2_000, 2_001);
            let i = rng.gen_range(0..input.len() as u64) as usize;
            input.insert(i, a);
            let j = rng.gen_range(i as u64 + 1..input.len() as u64 + 1) as usize;
            input.insert(j, b);
            (input, Predicate::OrderedPair(a, b))
        }
        _ => {
            let m = rng.gen_range(2..7) as u32;
            let r = rng.gen_range(0..u64::from(m)) as u32;
            let have = input.iter().filter(|x| *x % m == r).count();
            let n = if have == 0 {
                0
            } else {
                rng.gen_range(1..have as u64 + 1) as usize
            };
            (input, Predicate::Threshold { m, r, n })
        }
    }
}

#[test]
fn shrink_output_still_fails() {
    let mut rng = SmallRng::seed_from_u64(0xD011);
    for _ in 0..60 {
        let (input, p) = failing_case(&mut rng);
        assert!(p.fails(&input), "generator must produce failing inputs");
        let min = shrink(&input, &|s| p.fails(s));
        assert!(p.fails(&min), "shrunk sequence no longer fails");
        assert!(min.len() <= input.len());
    }
}

#[test]
fn shrink_output_is_one_minimal() {
    let mut rng = SmallRng::seed_from_u64(0xD012);
    for _ in 0..60 {
        let (input, p) = failing_case(&mut rng);
        let min = shrink(&input, &|s| p.fails(s));
        for drop in 0..min.len() {
            let mut sub = min.clone();
            sub.remove(drop);
            assert!(
                !p.fails(&sub),
                "dropping element {drop} of {min:?} still fails — not 1-minimal"
            );
        }
    }
}

#[test]
fn shrink_is_idempotent() {
    let mut rng = SmallRng::seed_from_u64(0xD013);
    for _ in 0..60 {
        let (input, p) = failing_case(&mut rng);
        let once = shrink(&input, &|s| p.fails(s));
        let twice = shrink(&once, &|s| p.fails(s));
        assert_eq!(once, twice, "re-shrinking must be a fixpoint");
    }
}

#[test]
fn shrink_returns_passing_inputs_unchanged() {
    let input: Vec<u32> = (0..40).collect();
    let never = |_: &[u32]| false;
    assert_eq!(shrink(&input, &never), input);
    let empty: Vec<u32> = Vec::new();
    assert_eq!(shrink(&empty, &|s: &[u32]| s.is_empty()), empty);
}
