//! On-disk trace format contracts, end to end: v1 and v2 files must
//! decode back to the exact instruction sequence that was encoded, a
//! flipped byte anywhere past the header must be *detected* (strict
//! mode rejects; lenient mode salvages only the CRC-verified prefix),
//! and a damaged header must be fatal in both modes.

use dcfb_errors::{DcfbError, TraceErrorKind};
use dcfb_trace::{
    read_binary, read_binary_checked, write_binary_v1, write_binary_v2, IsaMode, ReadMode, VecTrace,
};
use dcfb_workloads::{Walker, Workload, WorkloadParams};

/// v2 header length (see the layout doc in `dcfb_trace::file`).
const HEADER: usize = 24;
/// Bytes per record: pc (8) + target (8) + size (1) + kind (1).
const RECORD: usize = 18;
/// Small chunks so a handful of records spans several CRC footers.
const CHUNK: u16 = 8;

fn workload() -> Workload {
    Workload {
        name: "roundtrip",
        params: WorkloadParams {
            name: "roundtrip".to_owned(),
            functions: 200,
            root_functions: 8,
            ..WorkloadParams::default()
        },
        image_seed: 17,
    }
}

fn capture(n: usize) -> VecTrace {
    let image = workload().image(IsaMode::Fixed4);
    let mut walker = Walker::new(image, 9);
    VecTrace::capture(&mut walker, n)
}

fn encode_v2(trace: &VecTrace, chunk: u16) -> Vec<u8> {
    let mut bytes = Vec::new();
    let n = write_binary_v2(
        &mut trace.replay(),
        &mut bytes,
        u64::MAX,
        Some(IsaMode::Fixed4),
        chunk,
    )
    .expect("in-memory write");
    assert_eq!(n as usize, trace.len());
    bytes
}

#[test]
fn v2_round_trips_exactly() {
    let trace = capture(5_000);
    let bytes = encode_v2(&trace, 512);
    let (back, report) = read_binary_checked(bytes.as_slice(), ReadMode::Strict).unwrap();
    assert_eq!(back.instrs(), trace.instrs());
    assert_eq!(report.version, 2);
    assert_eq!(report.isa, Some(IsaMode::Fixed4));
    assert_eq!(report.records, 5_000);
    assert_eq!(report.declared_records, Some(5_000));
    assert!(!report.is_salvaged());
}

#[test]
fn v1_round_trips_exactly() {
    let trace = capture(5_000);
    let mut bytes = Vec::new();
    let n = write_binary_v1(&mut trace.replay(), &mut bytes, u64::MAX).unwrap();
    assert_eq!(n, 5_000);
    let (back, report) = read_binary_checked(bytes.as_slice(), ReadMode::Strict).unwrap();
    assert_eq!(back.instrs(), trace.instrs());
    assert_eq!(report.version, 1);
    assert_eq!(report.isa, None, "v1 headers carry no ISA");
    assert!(!report.is_salvaged());
}

#[test]
fn corrupted_chunk_is_rejected_strict() {
    let trace = capture(30);
    let mut bytes = encode_v2(&trace, CHUNK);
    // Flip one payload byte inside the third chunk (two full 8-record
    // chunks precede it).
    let chunk_bytes = usize::from(CHUNK) * RECORD + 4;
    bytes[HEADER + 2 * chunk_bytes + 5] ^= 0x01;
    let err = read_binary(bytes.as_slice()).expect_err("strict mode must reject");
    match err {
        DcfbError::Trace { kind, .. } => {
            assert!(
                matches!(kind, TraceErrorKind::ChecksumMismatch { .. }),
                "expected a checksum mismatch, got {kind:?}"
            );
        }
        other => panic!("expected DcfbError::Trace, got {other:?}"),
    }
}

#[test]
fn corrupted_chunk_salvages_verified_prefix_lenient() {
    let trace = capture(30);
    let mut bytes = encode_v2(&trace, CHUNK);
    let chunk_bytes = usize::from(CHUNK) * RECORD + 4;
    bytes[HEADER + 2 * chunk_bytes + 5] ^= 0x01;
    let (back, report) = read_binary_checked(bytes.as_slice(), ReadMode::Lenient).unwrap();
    // Exactly the two CRC-verified chunks before the damage survive;
    // nothing from the damaged chunk leaks through.
    assert_eq!(report.records, 2 * u64::from(CHUNK));
    assert_eq!(back.instrs(), &trace.instrs()[..2 * usize::from(CHUNK)]);
    assert!(report.is_salvaged());
    assert!(matches!(
        report.salvage,
        Some(DcfbError::Trace {
            kind: TraceErrorKind::ChecksumMismatch { .. },
            ..
        })
    ));
}

#[test]
fn truncated_v2_salvages_whole_chunks_lenient() {
    let trace = capture(30);
    let bytes = encode_v2(&trace, CHUNK);
    // Cut mid-way through the final (6-record) chunk.
    let cut = bytes.len() - 40;
    assert!(
        read_binary(&bytes[..cut]).is_err(),
        "strict mode must reject a truncated stream"
    );
    let (back, report) = read_binary_checked(&bytes[..cut], ReadMode::Lenient).unwrap();
    assert_eq!(report.records, 3 * u64::from(CHUNK));
    assert_eq!(back.instrs(), &trace.instrs()[..3 * usize::from(CHUNK)]);
    assert!(report.is_salvaged());
}

#[test]
fn damaged_header_is_fatal_even_lenient() {
    let trace = capture(30);
    let mut bytes = encode_v2(&trace, CHUNK);
    bytes[12] ^= 0x01; // declared-record-count field: header CRC breaks
    assert!(read_binary(bytes.as_slice()).is_err());
    assert!(
        read_binary_checked(bytes.as_slice(), ReadMode::Lenient).is_err(),
        "nothing after a damaged header can be trusted"
    );
}

#[test]
fn truncated_v1_salvages_whole_records_lenient() {
    let trace = capture(30);
    let mut bytes = Vec::new();
    write_binary_v1(&mut trace.replay(), &mut bytes, u64::MAX).unwrap();
    // v1 layout: 8-byte magic + bare records. Cut mid-record.
    let cut = 8 + 20 * RECORD + 7;
    assert!(read_binary(&bytes[..cut]).is_err());
    let (back, report) = read_binary_checked(&bytes[..cut], ReadMode::Lenient).unwrap();
    assert_eq!(report.records, 20);
    assert_eq!(back.instrs(), &trace.instrs()[..20]);
    assert!(report.is_salvaged());
}
