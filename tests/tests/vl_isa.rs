//! Variable-length-ISA support (§V-D / §VII-J) end to end: branch
//! footprints virtualized in the DV-LLC are what make BTB prefilling
//! (and Dis target extraction) possible when instruction boundaries are
//! not self-describing.

use dcfb_sim::{run_config, SimConfig};
use dcfb_trace::IsaMode;
use dcfb_workloads::{Workload, WorkloadParams};

fn vl_workload() -> Workload {
    Workload {
        name: "vl",
        params: WorkloadParams {
            name: "vl".to_owned(),
            functions: 700,
            root_functions: 16,
            zipf_s: 0.9,
            ..WorkloadParams::default()
        },
        image_seed: 13,
    }
}

fn run(dvllc: bool) -> dcfb_sim::SimReport {
    let mut cfg = SimConfig::for_method("SN4L+Dis+BTB").unwrap();
    cfg.isa = IsaMode::Variable;
    cfg.uncore.dvllc = dvllc;
    cfg.warmup_instrs = 200_000;
    cfg.measure_instrs = 400_000;
    run_config(&vl_workload(), cfg, 9)
}

#[test]
fn dvllc_enables_btb_prefilling_on_vl_isa() {
    let with = run(true);
    let without = run(false);
    assert_eq!(with.instrs, without.instrs);
    // Without a BF source the pre-decoder cannot find boundaries, so
    // the BTB prefetch buffer starves and BTB-miss bubbles return.
    assert!(
        with.stall_btb * 3 < without.stall_btb,
        "DV-LLC should slash BTB stalls: {} vs {}",
        with.stall_btb,
        without.stall_btb
    );
    assert!(with.ipc() > without.ipc(), "DV-LLC should help IPC");
}

#[test]
fn vl_isa_prefetching_still_covers_misses() {
    let mut base_cfg = SimConfig::for_method("Baseline").unwrap();
    base_cfg.isa = IsaMode::Variable;
    base_cfg.warmup_instrs = 200_000;
    base_cfg.measure_instrs = 400_000;
    let base = run_config(&vl_workload(), base_cfg, 9);
    let with = run(true);
    assert!(
        with.miss_coverage_over(&base) > 0.4,
        "VL coverage {}",
        with.miss_coverage_over(&base)
    );
    assert!(with.speedup_over(&base) > 1.05);
}

#[test]
fn paper_dvllc_claim_instruction_hits_unaffected() {
    // §VII-J: the DV-LLC "remains as effective as a conventional LLC" —
    // instruction hit ratio unchanged, tiny data-side cost.
    let with = run(true);
    let without = run(false);
    let hit = |r: &dcfb_sim::SimReport| r.uncore.llc_hits as f64 / r.uncore.requests.max(1) as f64;
    assert!(
        (hit(&with) - hit(&without)).abs() < 0.03,
        "LLC hit ratio shifted: {} vs {}",
        hit(&with),
        hit(&without)
    );
}
