//! Reproducibility: every layer of the stack is a pure function of
//! (parameters, seed).

use dcfb_sim::{run_config, SimConfig};
use dcfb_trace::{InstrStream, IsaMode};
use dcfb_workloads::{all_workloads, Walker, Workload, WorkloadParams};

fn small_workload(seed: u64) -> Workload {
    Workload {
        name: "det",
        params: WorkloadParams {
            name: "det".to_owned(),
            functions: 300,
            root_functions: 12,
            ..WorkloadParams::default()
        },
        image_seed: seed,
    }
}

#[test]
fn images_are_bit_identical_across_builds() {
    let w = small_workload(5);
    let a = w.image(IsaMode::Fixed4);
    let b = w.image(IsaMode::Fixed4);
    assert_eq!(a.instrs().len(), b.instrs().len());
    assert!(a.instrs().iter().zip(b.instrs()).all(|(x, y)| x == y));
    assert_eq!(a.end(), b.end());
    assert_eq!(a.roots(), b.roots());
}

#[test]
fn traces_replay_identically() {
    let w = small_workload(5);
    let image = w.image(IsaMode::Fixed4);
    let mut x = Walker::new(image.clone(), 9);
    let mut y = Walker::new(image, 9);
    for _ in 0..300_000 {
        assert_eq!(x.next_instr(), y.next_instr());
    }
}

#[test]
fn full_simulations_are_deterministic() {
    let w = small_workload(5);
    for method in ["Baseline", "SN4L+Dis+BTB", "Shotgun", "Confluence"] {
        let mut cfg = SimConfig::for_method(method).unwrap();
        cfg.warmup_instrs = 100_000;
        cfg.measure_instrs = 200_000;
        let a = run_config(&w, cfg.clone(), 3);
        let b = run_config(&w, cfg, 3);
        assert_eq!(a.cycles, b.cycles, "{method} cycles");
        assert_eq!(a.instrs, b.instrs, "{method} instrs");
        assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses, "{method} misses");
        assert_eq!(a.external_requests, b.external_requests, "{method} ext");
        assert_eq!(a.stall_empty_ftq, b.stall_empty_ftq, "{method} ftq");
    }
}

#[test]
fn different_trace_seeds_differ_but_stay_in_family() {
    let w = small_workload(5);
    let mut cfg = SimConfig::for_method("Baseline").unwrap();
    cfg.warmup_instrs = 100_000;
    cfg.measure_instrs = 200_000;
    let a = run_config(&w, cfg.clone(), 1);
    let b = run_config(&w, cfg, 2);
    assert_ne!(a.cycles, b.cycles, "seeds should change the trace");
    // Same workload: characteristics must be in the same family.
    let (ma, mb) = (a.l1i_mpki(), b.l1i_mpki());
    assert!(
        (ma - mb).abs() / ma.max(mb) < 0.4,
        "mpki unstable across seeds: {ma} vs {mb}"
    );
}

#[test]
fn catalog_images_build_in_both_isa_modes() {
    for w in all_workloads() {
        let fixed = w.image(IsaMode::Fixed4);
        assert!(fixed.instrs().iter().all(|i| i.size == 4), "{}", w.name);
        let var = w.image(IsaMode::Variable);
        assert!(
            var.instrs().iter().any(|i| i.size != 4),
            "{} variable image has no variable sizes",
            w.name
        );
        // Both expose the same function count (same structure plan).
        assert_eq!(fixed.functions().len(), var.functions().len());
    }
}
