//! End-to-end checks that the reproduction exhibits the paper's
//! headline *shapes* at a reduced (CI-friendly) scale: who wins, in
//! which order, and where the pathologies appear.

use dcfb_sim::{run_config, SimConfig, SimReport};
use dcfb_workloads::{workload, Workload, WorkloadParams};

const WARMUP: u64 = 300_000;
const MEASURE: u64 = 600_000;

fn test_workload() -> Workload {
    // A mid-sized instruction-bound workload, cheap enough for CI.
    Workload {
        name: "ci-server",
        params: WorkloadParams {
            name: "ci-server".to_owned(),
            functions: 1200,
            avg_segments: 14.0,
            avg_bb_instrs: 6.0,
            cold_frac: 0.30,
            cold_taken_prob: 0.04,
            avg_cold_instrs: 10.0,
            loop_frac: 0.10,
            avg_loop_iters: 3.0,
            call_frac: 0.30,
            indirect_frac: 0.12,
            zipf_s: 0.9,
            max_call_depth: 24,
            root_functions: 24,
            biased_branch_frac: 0.85,
        },
        image_seed: 77,
    }
}

fn run(w: &Workload, method: &str) -> SimReport {
    let mut cfg = SimConfig::for_method(method).expect("method");
    cfg.warmup_instrs = WARMUP;
    cfg.measure_instrs = MEASURE;
    run_config(w, cfg, 42)
}

#[test]
fn headline_ordering_ours_beats_btb_directed_beats_baseline() {
    let w = test_workload();
    let base = run(&w, "Baseline");
    let ours = run(&w, "SN4L+Dis+BTB");
    let shotgun = run(&w, "Shotgun");
    assert!(base.l1i_mpki() > 5.0, "workload not instruction-bound");
    let ours_speedup = ours.speedup_over(&base);
    let shotgun_speedup = shotgun.speedup_over(&base);
    assert!(ours_speedup > 1.05, "ours {ours_speedup}");
    assert!(shotgun_speedup > 1.0, "shotgun {shotgun_speedup}");
    assert!(
        ours_speedup > shotgun_speedup,
        "ours {ours_speedup} <= shotgun {shotgun_speedup} (Fig. 16 ordering)"
    );
}

#[test]
fn component_breakdown_is_monotonic() {
    // Fig. 17: N4L <= SN4L <= SN4L+Dis <= SN4L+Dis+BTB (within noise,
    // each addition should not hurt).
    let w = test_workload();
    let base = run(&w, "Baseline");
    let stages = ["N4L", "SN4L", "SN4L+Dis", "SN4L+Dis+BTB"];
    let speedups: Vec<f64> = stages
        .iter()
        .map(|m| run(&w, m).speedup_over(&base))
        .collect();
    for pair in speedups.windows(2) {
        assert!(
            pair[1] > pair[0] - 0.02,
            "breakdown regressed: {stages:?} -> {speedups:?}"
        );
    }
    assert!(
        speedups[3] > speedups[0],
        "full system must beat plain N4L: {speedups:?}"
    );
}

#[test]
fn sn4l_matches_n4l_coverage_with_far_less_traffic() {
    let w = test_workload();
    let base = run(&w, "Baseline");
    let n4l = run(&w, "N4L");
    let sn4l = run(&w, "SN4L");
    let n4l_bw = n4l.bandwidth_over(&base);
    let sn4l_bw = sn4l.bandwidth_over(&base);
    assert!(
        sn4l_bw < n4l_bw * 0.8,
        "SN4L bandwidth {sn4l_bw:.2}x not much below N4L {n4l_bw:.2}x"
    );
    let n4l_cov = n4l.miss_coverage_over(&base);
    let sn4l_cov = sn4l.miss_coverage_over(&base);
    assert!(
        sn4l_cov > n4l_cov - 0.12,
        "SN4L coverage {sn4l_cov} collapsed vs N4L {n4l_cov}"
    );
}

#[test]
fn n8l_hurts_itself_with_useless_prefetches() {
    // Fig. 4/5: deeper is not better — N8L's traffic erodes its edge.
    let w = test_workload();
    let base = run(&w, "Baseline");
    let n4l = run(&w, "N4L");
    let n8l = run(&w, "N8L");
    assert!(
        n8l.bandwidth_over(&base) > n4l.bandwidth_over(&base) * 1.2,
        "N8L must generate much more traffic"
    );
    assert!(
        n8l.speedup_over(&base) < n4l.speedup_over(&base) + 0.05,
        "N8L should not meaningfully beat N4L"
    );
}

#[test]
fn sequential_misses_dominate_the_baseline() {
    // Fig. 2 band (65-80%), with slack for the CI workload.
    let w = test_workload();
    let base = run(&w, "Baseline");
    let f = base.seq_miss_fraction();
    assert!((0.55..0.95).contains(&f), "sequential fraction {f}");
}

#[test]
fn fscr_orders_like_the_paper() {
    // Fig. 15: ours covers the most frontend stalls.
    let w = test_workload();
    let base = run(&w, "Baseline");
    let ours = run(&w, "SN4L+Dis+BTB").fscr_over(&base);
    let shotgun = run(&w, "Shotgun").fscr_over(&base);
    assert!(ours > 0.3, "ours FSCR {ours}");
    assert!(ours > shotgun, "ours {ours} <= shotgun {shotgun}");
}

#[test]
fn shotgun_exhibits_footprint_misses_and_ftq_stalls() {
    // Fig. 1 / Table I: the §III pathology must be observable.
    let w = test_workload();
    let rep = run(&w, "Shotgun");
    let engine = rep.shotgun.expect("engine stats");
    let fmr = engine.footprint_miss_ratio();
    assert!(
        (0.01..0.6).contains(&fmr),
        "footprint miss ratio {fmr} outside plausible band"
    );
    assert!(
        rep.empty_ftq_fraction() > 0.01,
        "no empty-FTQ stalls observed"
    );
}

#[test]
fn web_frontend_is_least_frontend_bound() {
    // Fig. 16: the smallest workload gains the least.
    let fe = workload("Web Frontend").expect("catalog");
    let base = run(&fe, "Baseline");
    let ours = run(&fe, "SN4L+Dis+BTB");
    let fe_speedup = ours.speedup_over(&base);
    let w = test_workload();
    let big_base = run(&w, "Baseline");
    let big_speedup = run(&w, "SN4L+Dis+BTB").speedup_over(&big_base);
    assert!(
        fe_speedup < big_speedup,
        "Web Frontend ({fe_speedup}) should gain less than a big workload ({big_speedup})"
    );
}

#[test]
fn storage_budgets_match_table_ii() {
    let w = test_workload();
    let ours = run(&w, "SN4L+Dis+BTB");
    let kb = ours.storage_bits as f64 / 8.0 / 1024.0;
    assert!((6.5..8.5).contains(&kb), "ours {kb} KB, paper 7.6 KB");
    let shotgun = run(&w, "Shotgun");
    assert_eq!(shotgun.storage_bits / 8 / 1024, 6, "Shotgun 6 KB");
    let confl = run(&w, "Confluence");
    assert!(
        confl.storage_bits / 8 / 1024 > 100,
        "Confluence metadata must be orders larger"
    );
}
