//! External-trace replay: record a synthetic trace, rebuild the
//! pre-decode oracle from the observed stream, and verify the simulator
//! behaves equivalently to the image-backed run.

use dcfb_sim::{SimConfig, Simulator};
use dcfb_trace::{
    read_binary, write_binary, CodeMemory, InstrStream, IsaMode, RecordedCode, VecTrace,
};
use dcfb_workloads::{Walker, Workload, WorkloadParams};
use std::sync::Arc;

fn workload() -> Workload {
    Workload {
        name: "replay",
        params: WorkloadParams {
            name: "replay".to_owned(),
            functions: 400,
            root_functions: 12,
            ..WorkloadParams::default()
        },
        image_seed: 31,
    }
}

fn capture(n: usize) -> VecTrace {
    let image = workload().image(IsaMode::Fixed4);
    let mut walker = Walker::new(image, 5);
    VecTrace::capture(&mut walker, n)
}

#[test]
fn recorded_trace_round_trips_through_files() {
    let trace = capture(200_000);
    let mut replay = trace.replay();
    let mut bytes = Vec::new();
    let n = write_binary(&mut replay, &mut bytes, u64::MAX).unwrap();
    assert_eq!(n, 200_000);
    let back = read_binary(bytes.as_slice()).unwrap();
    assert_eq!(back.instrs(), trace.instrs());
}

#[test]
fn replayed_trace_simulates_like_the_image_backed_run() {
    let trace = capture(300_000);
    let w = workload();
    let image = w.image(IsaMode::Fixed4);

    let mut cfg = SimConfig::for_method("SN4L+Dis+BTB").unwrap();
    cfg.warmup_instrs = 100_000;
    cfg.measure_instrs = 200_000;

    // Image-backed run over the SAME instruction stream.
    let mut sim_img = Simulator::new(cfg.clone(), Arc::clone(&image));
    let mut replay1 = trace.replay();
    let img_rep = sim_img.run(&mut replay1);

    // Trace-backed run: pre-decode oracle reconstructed from the trace.
    let code: Arc<dyn CodeMemory + Send + Sync> =
        Arc::new(RecordedCode::from_trace(trace.instrs()));
    let start = trace.instrs()[0].pc;
    let mut sim_trc = Simulator::with_code(cfg, code, start, "trace".into());
    let mut replay2 = trace.replay();
    let trc_rep = sim_trc.run(&mut replay2);

    assert_eq!(img_rep.instrs, trc_rep.instrs);
    // The recorded oracle only knows executed code, so pre-decoding can
    // differ slightly (cold blocks decode empty); the overall timing
    // must still agree closely.
    let ratio = trc_rep.ipc() / img_rep.ipc();
    assert!(
        (0.9..1.1).contains(&ratio),
        "trace-backed IPC {} vs image-backed {}",
        trc_rep.ipc(),
        img_rep.ipc()
    );
    assert!(trc_rep.l1i.demand_misses > 0);
}

#[test]
fn recorded_code_covers_the_executed_footprint() {
    let trace = capture(100_000);
    let rec = RecordedCode::from_trace(trace.instrs());
    // Every executed block must decode non-empty.
    let mut replay = trace.replay();
    while let Some(i) = replay.next_instr() {
        assert!(
            !rec.instrs_in_block(i.block()).is_empty(),
            "block {:#x} missing",
            i.block()
        );
    }
}
