//! Property-based cross-crate invariants: any valid workload
//! configuration must produce structurally sound images, traces, and
//! simulation reports.

use dcfb_sim::{run_config, SimConfig};
use dcfb_trace::{block_of, InstrStream, IsaMode};
use dcfb_workloads::{Terminator, Walker, Workload, WorkloadParams};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = WorkloadParams> {
    (
        60usize..400,
        2.0f64..18.0,
        2.0f64..10.0,
        0.0f64..0.4,
        0.0f64..0.3,
        0.0f64..0.3,
        0.4f64..1.4,
        2usize..24,
    )
        .prop_map(
            |(functions, segments, bb, cold, loops, calls, zipf, roots)| WorkloadParams {
                name: "prop".to_owned(),
                functions,
                avg_segments: segments,
                avg_bb_instrs: bb,
                cold_frac: cold,
                cold_taken_prob: 0.05,
                avg_cold_instrs: 6.0,
                loop_frac: loops,
                avg_loop_iters: 3.0,
                call_frac: calls,
                indirect_frac: 0.1,
                zipf_s: zipf,
                max_call_depth: 32,
                root_functions: roots.min(functions),
                biased_branch_frac: 0.85,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_image_is_structurally_sound(params in arb_params(), seed in 0u64..1000) {
        let image = dcfb_workloads::ProgramImage::build(&params, seed, IsaMode::Fixed4);
        // Instructions strictly ordered and non-overlapping.
        for w in image.instrs().windows(2) {
            prop_assert!(w[0].pc + u64::from(w[0].size) <= w[1].pc);
        }
        // Every function ends in Return (except the dispatcher).
        for f in image.functions().iter().skip(1) {
            prop_assert!(matches!(
                f.blocks.last().unwrap().term,
                Terminator::Return
            ));
        }
        // Block lookup agrees with the flat array.
        let mid = image.instrs()[image.instrs().len() / 2];
        let blk = image.block_slice(block_of(mid.pc));
        prop_assert!(blk.iter().any(|i| i.pc == mid.pc));
    }

    #[test]
    fn any_trace_is_control_flow_consistent(params in arb_params(), seed in 0u64..1000) {
        let image = std::sync::Arc::new(
            dcfb_workloads::ProgramImage::build(&params, seed, IsaMode::Fixed4),
        );
        let mut w = Walker::new(image, seed ^ 0xabc);
        let mut prev: Option<dcfb_trace::Instr> = None;
        for _ in 0..20_000 {
            let i = w.next_instr().unwrap();
            if let Some(p) = prev {
                prop_assert_eq!(p.next_pc(), i.pc);
            }
            prev = Some(i);
        }
    }

    #[test]
    fn any_simulation_report_is_coherent(params in arb_params(), seed in 0u64..100) {
        let workload = Workload { name: "prop", params, image_seed: seed };
        let mut cfg = SimConfig::for_method("SN4L+Dis+BTB").unwrap();
        cfg.warmup_instrs = 20_000;
        cfg.measure_instrs = 50_000;
        let r = run_config(&workload, cfg, seed);
        prop_assert_eq!(r.instrs, 50_000);
        prop_assert!(r.cycles > 0);
        // Hits + misses = accesses.
        prop_assert_eq!(
            r.l1i.demand_hits + r.l1i.demand_misses,
            r.l1i.demand_accesses
        );
        // Miss classification covers all misses (buffer re-credits aside).
        prop_assert!(r.seq_misses + r.disc_misses >= r.l1i.demand_misses);
        // CMAL is a valid fraction.
        let c = r.cmal();
        prop_assert!((0.0..=1.0).contains(&c), "cmal {}", c);
        // IPC can never exceed the fetch width.
        prop_assert!(r.ipc() <= 3.0 + 1e-9);
        // The uncore saw at least every uncovered miss.
        prop_assert!(r.external_requests >= r.uncovered_misses);
    }
}
